"""Sharded aggregation: parallel sub-aggregators with a deterministic merge.

A :class:`ShardedAccumulator` partitions the cohort round-robin across
``shards`` sub-accumulators — update ``i`` lands in shard ``i % shards`` —
each holding its own O(P) weighted-sum vector.  The final fold merges the
shard sums in ascending shard order, so the result is a pure function of
the fold sequence: it does not depend on whether the shards were reduced
incrementally (one update at a time), sequentially, or in parallel.

:meth:`ShardedAggregator.aggregate` exploits that freedom: it reduces the
shards on a thread pool (NumPy releases the GIL inside the axpy kernels)
and is bit-identical to the incremental accumulator by construction — the
per-shard fold order and the ascending-shard merge order are fixed
regardless of thread timing.

Like the streaming accumulator, cohorts up to ``parity_limit`` stay in the
exact-parity buffered mode and reproduce the GEMV bitwise.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.fl.aggregation.streaming import (
    DEFAULT_PARITY_LIMIT,
    Aggregator,
    StreamingDeltaAccumulator,
    UpdateAccumulator,
    _check_weight,
    _layout_of,
)
from repro.fl.parameters import State, StateLayout, state_vector, weighted_average, wrap_flat


class ShardedAccumulator(UpdateAccumulator):
    """Round-robin sharded weighted-sum accumulators (O(shards * P) memory)."""

    def __init__(self, shards: int = 4, parity_limit: int = DEFAULT_PARITY_LIMIT):
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        if parity_limit < 0:
            raise ValueError(f"parity_limit must be >= 0, got {parity_limit}")
        self.shards = int(shards)
        self.parity_limit = int(parity_limit)
        self._pending: List[Tuple[State, float]] = []
        self._layout: Optional[StateLayout] = None
        self._shard_sums: Optional[List[np.ndarray]] = None
        self._weight_total = 0.0
        self._count = 0

    @property
    def spilled(self) -> bool:
        return self._shard_sums is not None

    def fold(self, state: State, weight: float) -> None:
        weight = _check_weight(weight)
        index = self._count
        self._count += 1
        self._weight_total += weight
        if self._shard_sums is None and len(self._pending) < self.parity_limit:
            self._pending.append((state, weight))
            return
        self._spill(state)
        self._shard_sums[index % self.shards] += weight * state_vector(state, self._layout)

    def _spill(self, incoming: State) -> None:
        if self._shard_sums is not None:
            return
        reference = self._pending[0][0] if self._pending else incoming
        self._layout = _layout_of(reference)
        self._shard_sums = [
            np.zeros(self._layout.total_size, dtype=np.float64) for _ in range(self.shards)
        ]
        for index, (state, weight) in enumerate(self._pending):
            self._shard_sums[index % self.shards] += weight * state_vector(state, self._layout)
        self._pending = []

    def result(self) -> State:
        if self._shard_sums is None:
            return weighted_average(
                [state for state, _ in self._pending],
                [weight for _, weight in self._pending],
            )
        if self._weight_total <= 0:
            raise ValueError("weights must not all be zero")
        # Deterministic final fold: ascending shard order, always.
        merged = self._shard_sums[0].copy()
        for shard in self._shard_sums[1:]:
            merged += shard
        return wrap_flat(self._layout, merged / self._weight_total)

    @property
    def count(self) -> int:
        return self._count

    @property
    def weight_total(self) -> float:
        return self._weight_total

    def states(self) -> Optional[List[State]]:
        if self._shard_sums is not None:
            return None
        return [state for state, _ in self._pending]


class ShardedAggregator(Aggregator):
    """Sharded sub-aggregators reduced in parallel before a deterministic merge."""

    name = "sharded"
    streaming = True

    def __init__(self, shards: int = 4, parity_limit: int = DEFAULT_PARITY_LIMIT):
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        if parity_limit < 0:
            raise ValueError(f"parity_limit must be >= 0, got {parity_limit}")
        self.shards = int(shards)
        self.parity_limit = int(parity_limit)

    def accumulator(self) -> ShardedAccumulator:
        return ShardedAccumulator(shards=self.shards, parity_limit=self.parity_limit)

    def delta_accumulator(self) -> StreamingDeltaAccumulator:
        return StreamingDeltaAccumulator(parity_limit=self.parity_limit)

    def aggregate(self, states: Sequence[State], weights: Sequence[float]) -> State:
        """Batch aggregation with the shard reduction run on threads.

        Bit-identical to folding the same sequence through
        :class:`ShardedAccumulator`: shard membership (``i % shards``),
        per-shard fold order, and the ascending-shard merge are all fixed,
        so thread scheduling cannot influence any value.
        """
        states = list(states)
        weights = [_check_weight(weight) for weight in weights]
        if len(states) != len(weights):
            raise ValueError(f"got {len(states)} states but {len(weights)} weights")
        if len(states) <= self.parity_limit:
            return weighted_average(states, weights)
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must not all be zero")
        layout = _layout_of(states[0])

        def reduce_shard(shard_index: int) -> np.ndarray:
            partial = np.zeros(layout.total_size, dtype=np.float64)
            for state, weight in zip(
                states[shard_index :: self.shards], weights[shard_index :: self.shards]
            ):
                partial += weight * state_vector(state, layout)
            return partial

        with ThreadPoolExecutor(max_workers=self.shards) as executor:
            partials = list(executor.map(reduce_shard, range(self.shards)))
        merged = partials[0].copy()
        for partial in partials[1:]:
            merged += partial
        return wrap_flat(layout, merged / total)

    def describe(self) -> str:
        return f"{self.name}(shards={self.shards}, parity_limit={self.parity_limit})"
