"""Typed failures for the fault-tolerant federation runtime.

This module is dependency-free so every layer (backends, supervisor, round
loops, CLI) can import the exception types without cycles.

Two families live here:

Injected faults
    :class:`InjectedFault` subclasses raised (or simulated) by the
    deterministic :class:`~repro.fl.faults.FaultPlan`.  They model a client
    crashing, raising, timing out, or corrupting its upload.

Runtime failures
    :class:`ClientExecutionError` wraps any per-task failure with the
    client id, round number, and backend context before it reaches the
    caller; :class:`QuorumFailure` is the typed, recoverable signal that a
    round fell below its commit quorum.  :class:`TaskFailure` is the
    *value* (not exception) a backend yields for a failed task so streaming
    iterators survive individual task deaths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class InjectedFault(RuntimeError):
    """Base class for all deterministically injected client faults."""

    #: Short registry name of the fault kind (``crash``/``exception``/...).
    kind: str = "fault"


class InjectedCrash(InjectedFault):
    """The client process died before producing an update."""

    kind = "crash"


class InjectedException(InjectedFault):
    """The client raised mid-training (bad batch, numerical blow-up, ...)."""

    kind = "exception"


class InjectedTimeout(InjectedFault):
    """The client exceeded its task deadline and was abandoned."""

    kind = "timeout"


class InjectedCorruption(InjectedFault):
    """The client's upload arrived with flipped bytes."""

    kind = "corruption"


@dataclass
class TaskFailure:
    """One failed client task, yielded (never raised) by a backend.

    ``kind`` matches the injected-fault vocabulary (``crash`` for dead
    workers, ``timeout`` for abandoned tasks, ``exception`` otherwise);
    ``error`` is a short repr of the underlying cause and ``traceback`` the
    formatted remote traceback when one crossed a process boundary.
    """

    task_index: int
    client_index: int
    client_id: str
    kind: str
    error: str
    traceback: Optional[str] = None


class ClientExecutionError(RuntimeError):
    """A client task failed, annotated with full execution context.

    Replaces bare worker tracebacks / ``BrokenProcessPool`` with the client
    id, backend name, round number, and attempt count.  The original cause
    is chained (``raise ... from original``) when it is available in the
    raising process.
    """

    def __init__(
        self,
        message: str,
        *,
        client_id: str,
        client_index: int,
        backend: str,
        round_index: Optional[int] = None,
        attempt: int = 0,
        kind: str = "exception",
        remote_traceback: Optional[str] = None,
    ):
        self.client_id = str(client_id)
        self.client_index = int(client_index)
        self.backend = str(backend)
        self.round_index = None if round_index is None else int(round_index)
        self.attempt = int(attempt)
        self.kind = str(kind)
        self.remote_traceback = remote_traceback
        where = f"client {self.client_id!r} (index {self.client_index}) on backend {self.backend!r}"
        if self.round_index is not None:
            where += f", round {self.round_index}"
        if self.attempt:
            where += f", attempt {self.attempt}"
        detail = f"{message} [{where}]"
        if remote_traceback:
            detail += f"\n--- remote traceback ---\n{remote_traceback}"
        super().__init__(detail)


class QuorumFailure(RuntimeError):
    """A round could not gather enough client updates to commit.

    Raised *after* the previous round's checkpoint is already on disk (the
    checkpoint manager saves eagerly every round), so the run is resumable:
    ``checkpoint_dir`` points at the directory holding the auto-checkpoint,
    or is ``None`` when checkpointing was not enabled.
    """

    def __init__(
        self,
        round_index: int,
        *,
        arrived: int,
        required: int,
        cohort_size: int,
        checkpoint_dir: Optional[str] = None,
    ):
        self.round_index = int(round_index)
        self.arrived = int(arrived)
        self.required = int(required)
        self.cohort_size = int(cohort_size)
        self.checkpoint_dir = checkpoint_dir
        detail = (
            f"round {self.round_index} fell below quorum: "
            f"{self.arrived}/{self.cohort_size} updates arrived, "
            f"{self.required} required"
        )
        if checkpoint_dir is not None:
            detail += f"; resume from the auto-checkpoint in {checkpoint_dir!r}"
        super().__init__(detail)


__all__ = [
    "InjectedFault",
    "InjectedCrash",
    "InjectedException",
    "InjectedTimeout",
    "InjectedCorruption",
    "TaskFailure",
    "ClientExecutionError",
    "QuorumFailure",
]
