"""Fault-tolerant federation runtime: deterministic chaos, retries, quorum.

This subpackage turns client failure from a run-ending traceback into a
first-class, *deterministic* part of the simulation:

:class:`FaultPlan`
    Seeded, checkpointable per-client fault probabilities (crash /
    exception / timeout / payload corruption) drawn from counter-based
    RNGs, so a chaos run is bit-reproducible on every backend and
    resumable mid-run.
:class:`RetryPolicy`
    Bounded retries with exponential, deterministically jittered backoff
    that elapses on the virtual clock.
:class:`ResilienceManager`
    The supervisor wiring both into the execution backends and the round
    loops: RNG-snapshot/restore around failed attempts, wave-based
    re-dispatch, quorum-gated round commits, and permanent drops with
    recorded weight renormalization.

Build one from flat options with :func:`create_resilience`, which returns
``None`` at the inert defaults so default runs take the pre-resilience
code paths bit for bit.
"""

from repro.fl.faults.errors import (
    ClientExecutionError,
    InjectedCorruption,
    InjectedCrash,
    InjectedException,
    InjectedFault,
    InjectedTimeout,
    QuorumFailure,
    TaskFailure,
)
from repro.fl.faults.plan import FAULT_KINDS, FAULT_SEED_TAG, FaultDecision, FaultPlan
from repro.fl.faults.retry import DEFAULT_MAX_RETRIES, RETRY_SEED_TAG, RetryPolicy
from repro.fl.faults.supervisor import (
    ResilienceManager,
    ResilienceSummary,
    create_resilience,
    resilience_requested,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_SEED_TAG",
    "RETRY_SEED_TAG",
    "DEFAULT_MAX_RETRIES",
    "FaultDecision",
    "FaultPlan",
    "RetryPolicy",
    "ResilienceManager",
    "ResilienceSummary",
    "create_resilience",
    "resilience_requested",
    "InjectedFault",
    "InjectedCrash",
    "InjectedException",
    "InjectedTimeout",
    "InjectedCorruption",
    "TaskFailure",
    "ClientExecutionError",
    "QuorumFailure",
]
