"""The resilience manager: supervised dispatch, retries, quorum, drops.

:class:`ResilienceManager` sits between an algorithm's round loop and its
execution backend.  Each client pass becomes a sequence of *waves*:

1. Snapshot every pending client's RNG state, then ask the
   :class:`~repro.fl.faults.FaultPlan` whether this attempt fails.
   ``crash``/``exception``/``timeout`` strike *before* dispatch (the task
   never runs, the client RNG never advances — uniform semantics across
   serial/thread/process); ``corruption`` lets the task run and then flips
   a byte of its upload payload while keeping the original CRC, so the
   genuine framing check rejects it at decode.
2. Dispatch the surviving tasks through the backend's ``imap_outcomes``,
   which yields a :class:`~repro.fl.faults.TaskFailure` *value* for any
   task that really died (worker crash, timeout, exception) instead of
   raising — so one dead task cannot kill the wave.
3. Every failed client has its RNG snapshot restored and is re-dispatched
   in the next wave after a deterministic backoff on the **virtual clock**
   (:class:`~repro.fl.faults.RetryPolicy`), until it succeeds or exhausts
   its retries (``gave_up``).

A fault-free supervised pass is exactly one wave in task order with zero
extra RNG draws, so it is bit-identical to the unsupervised path — the
contract the parity tests pin down.

Round-level degradation lives here too: :meth:`active_cohort` filters
permanently failed clients out of future cohorts, :meth:`check_quorum`
raises the typed :class:`~repro.fl.faults.QuorumFailure` when too few
updates fold, and :meth:`commit_round` converts this round's ``gave_up``
clients into permanent drops with a recorded weight renormalization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.fl.faults.errors import InjectedFault, QuorumFailure, TaskFailure
from repro.fl.faults.plan import FaultDecision, FaultPlan
from repro.fl.faults.retry import DEFAULT_MAX_RETRIES, RetryPolicy
from repro.fl.scheduling.clock import VirtualClock
from repro.fl.transport.codecs import Payload
from repro.fl.transport.errors import TransportDecodeError

#: Fault kinds injected before dispatch (the task never runs).
_PRE_DISPATCH_KINDS = ("crash", "exception", "timeout")


@dataclass(frozen=True)
class ResilienceSummary:
    """Fault-tolerance totals of one run (surfaced through the report)."""

    quorum: float
    retries: int
    gave_up: int
    respawns: int
    dropped_clients: List[int]
    injected: Dict[str, int]
    backoff_seconds: float
    renormalizations: List[Dict[str, object]]
    retry_policy: str
    #: Network accounting from a wire-backend run (``None`` for in-process
    #: backends): dispatched/completed counts, disconnects, heartbeat
    #: losses, reconnects, replayed messages, injected wire faults, bytes.
    network: Optional[Dict[str, int]] = None

    def to_dict(self) -> Dict[str, object]:
        result = {
            "quorum": self.quorum,
            "retries": self.retries,
            "gave_up": self.gave_up,
            "respawns": self.respawns,
            "dropped_clients": list(self.dropped_clients),
            "injected": dict(self.injected),
            "backoff_seconds": self.backoff_seconds,
            "renormalizations": [dict(record) for record in self.renormalizations],
            "retry_policy": self.retry_policy,
        }
        if self.network is not None:
            result["network"] = dict(self.network)
        return result


@dataclass
class _Attempt:
    """One task's supervision state across waves."""

    task: object
    attempt: int = 0
    rng_snapshot: Optional[dict] = None
    decision: FaultDecision = field(default_factory=lambda: FaultDecision(kind=None))


def _corrupt_payload(payload: Optional[Payload], salt: int) -> Optional[Payload]:
    """Flip one byte of ``payload.data`` while keeping the original CRC.

    Returns ``None`` when there is nothing to corrupt (no payload / empty
    data) — the caller then injects the fault as an exception instead.
    """
    if payload is None or len(payload.data) == 0:
        return None
    data = bytearray(payload.data)
    position = salt % len(data)
    data[position] ^= ((salt >> 7) % 255) + 1
    return Payload(codec=payload.codec, data=bytes(data), schema=payload.schema, crc=payload.crc)


class ResilienceManager:
    """Supervised execution with deterministic faults, retries, and quorum.

    One manager is stateful for one algorithm run (like a scheduler or a
    channel): it owns the fault plan's draw counters, the permanent-failure
    set, and the retry accounting, all of which round-trip through
    :meth:`state`/:meth:`set_state` for checkpoint resume.
    """

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        quorum: float = 1.0,
        clock: Optional[VirtualClock] = None,
    ):
        if not 0.0 < quorum <= 1.0:
            raise ValueError(f"quorum must be in (0, 1], got {quorum}")
        self.plan = plan if plan is not None else FaultPlan()
        self.retry = retry if retry is not None else RetryPolicy()
        self.quorum = float(quorum)
        #: Virtual clock backoff elapses on.  Replaced by the scheduler's
        #: clock at bind time so retry waits and straggler latencies share
        #: one timeline.
        self.clock = clock if clock is not None else VirtualClock()
        # Run totals.
        self.retries = 0
        self.gave_up = 0
        self.backoff_seconds = 0.0
        # Roster indices permanently dropped from future cohorts.
        self._failed: set = set()
        self._renormalizations: List[Dict[str, object]] = []
        # Per-round scratch.
        self._round_index: Optional[int] = None
        self._round_gave_up: List[int] = []
        self._round_retries = 0
        self._clients: Sequence = ()

    # -- wiring -------------------------------------------------------------------
    def bind(self, clients: Sequence, clock: Optional[VirtualClock] = None) -> None:
        """Attach the roster (and, when scheduled, the scheduler's clock)."""
        self._clients = clients
        if clock is not None:
            self.clock = clock

    # -- cohort filtering / quorum -------------------------------------------------
    def active_cohort(self, cohort: Iterable[int]) -> List[int]:
        """``cohort`` minus the permanently failed clients."""
        return [int(index) for index in cohort if int(index) not in self._failed]

    @property
    def failed_indices(self) -> List[int]:
        """Roster indices permanently dropped so far (sorted)."""
        return sorted(self._failed)

    def quorum_required(self, cohort_size: int) -> int:
        """Updates needed to commit a round over ``cohort_size`` clients."""
        if cohort_size <= 0:
            return 0
        return int(math.ceil(self.quorum * cohort_size))

    def check_quorum(
        self,
        round_index: int,
        arrived: int,
        cohort_size: int,
        checkpoint_dir: Optional[str] = None,
    ) -> None:
        """Raise the typed :class:`QuorumFailure` when too few updates fold."""
        required = self.quorum_required(cohort_size)
        if arrived < required:
            raise QuorumFailure(
                round_index,
                arrived=arrived,
                required=required,
                cohort_size=cohort_size,
                checkpoint_dir=checkpoint_dir,
            )

    # -- round lifecycle -----------------------------------------------------------
    def begin_round(self, round_index: int) -> None:
        """Reset the per-round scratch state."""
        self._round_index = int(round_index)
        self._round_gave_up = []
        self._round_retries = 0

    def commit_round(self, weights: Sequence[float]) -> Dict[str, object]:
        """Commit a round: permanently drop its ``gave_up`` clients.

        ``weights`` are the full-roster aggregation weights ``n_k``; the
        recorded renormalization says how much aggregation weight the run
        lost (weighted averaging renormalizes over participants implicitly,
        so recording — not rescaling — is the correct bookkeeping).
        Returns extras for the round's history record.
        """
        extra: Dict[str, object] = {}
        if self._round_retries:
            extra["retries"] = self._round_retries
        if self._round_gave_up:
            dropped = sorted(set(self._round_gave_up))
            self._failed.update(dropped)
            total = float(sum(weights))
            remaining = float(
                sum(weight for index, weight in enumerate(weights) if index not in self._failed)
            )
            record: Dict[str, object] = {
                "round": self._round_index,
                "dropped_indices": dropped,
                "dropped_ids": [
                    getattr(self._clients[index], "client_id", index) for index in dropped
                ],
                "dropped_weight": total - remaining if total else 0.0,
                "remaining_weight_fraction": (remaining / total) if total else 1.0,
            }
            self._renormalizations.append(record)
            extra["dropped_clients"] = list(record["dropped_ids"])
            extra["remaining_weight_fraction"] = record["remaining_weight_fraction"]
        self._round_gave_up = []
        self._round_retries = 0
        return extra

    # -- supervised dispatch -------------------------------------------------------
    def supervise(
        self,
        backend,
        tasks: Sequence,
        finish: Callable,
        clients: Sequence,
    ) -> Iterator:
        """Run ``tasks`` with fault injection, retries, and backoff.

        Yields each successful :class:`~repro.fl.execution.ClientUpdate` as
        soon as it survives ``finish`` (decode + channel accounting).
        Clients that exhaust their retries yield nothing; they are recorded
        as ``gave_up`` for :meth:`commit_round` to drop.
        """
        pending = [_Attempt(task=task) for task in tasks]
        while pending:
            failures: List[tuple] = []
            dispatch: List[_Attempt] = []
            for entry in pending:
                client = clients[entry.task.client_index]
                entry.rng_snapshot = client.rng_state
                entry.decision = self.plan.draw(client.client_id)
                if entry.decision.kind in _PRE_DISPATCH_KINDS:
                    failures.append((entry, entry.decision.kind))
                else:
                    dispatch.append(entry)
            if dispatch:
                outcomes = backend.imap_outcomes(
                    [entry.task for entry in dispatch],
                    timeout=self.retry.task_timeout,
                )
                for entry, outcome in zip(dispatch, outcomes):
                    if isinstance(outcome, TaskFailure):
                        failures.append((entry, outcome.kind))
                        continue
                    update = outcome
                    if entry.decision.kind == "corruption":
                        corrupted = _corrupt_payload(update.payload, entry.decision.salt)
                        if corrupted is None:
                            # Nothing on the wire to corrupt (raw in-process
                            # state): the fault degenerates to an exception.
                            failures.append((entry, "corruption"))
                            continue
                        update.payload = corrupted
                    try:
                        finish(update)
                    except TransportDecodeError:
                        failures.append((entry, "corruption"))
                        continue
                    yield update
            pending = self._next_wave(failures, clients)

    def _next_wave(self, failures: List[tuple], clients: Sequence) -> List[_Attempt]:
        """Restore RNG snapshots and schedule the retried attempts."""
        next_wave: List[_Attempt] = []
        for entry, _kind in failures:
            client = clients[entry.task.client_index]
            if entry.rng_snapshot is not None:
                client.rng_state = entry.rng_snapshot
            entry.attempt += 1
            if entry.attempt > self.retry.max_retries:
                self.gave_up += 1
                self._round_gave_up.append(int(entry.task.client_index))
                continue
            self.retries += 1
            self._round_retries += 1
            wait = self.retry.backoff_seconds(client.client_id, entry.attempt)
            if wait > 0.0:
                self.clock.advance(wait)
                self.backoff_seconds += wait
            next_wave.append(entry)
        return next_wave

    # -- state / summary -----------------------------------------------------------
    def state(self) -> Dict[str, object]:
        """Everything needed to resume supervision bit-identically."""
        return {
            "plan": self.plan.state(),
            "failed": sorted(self._failed),
            "renormalizations": [dict(record) for record in self._renormalizations],
            "counters": {
                "retries": self.retries,
                "gave_up": self.gave_up,
                "backoff_seconds": self.backoff_seconds,
            },
            "clock": self.clock.state(),
        }

    def set_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot produced by :meth:`state` (checkpoint resume)."""
        self.plan.set_state(state["plan"])
        self._failed = set(int(index) for index in state.get("failed", []))
        self._renormalizations = [dict(record) for record in state.get("renormalizations", [])]
        counters = state.get("counters", {})
        self.retries = int(counters.get("retries", 0))
        self.gave_up = int(counters.get("gave_up", 0))
        self.backoff_seconds = float(counters.get("backoff_seconds", 0.0))
        if "clock" in state:
            self.clock.set_state(state["clock"])

    def describe(self) -> Dict[str, object]:
        """Static identity of the fault model (checkpoint fingerprint)."""
        return self.plan.describe()

    def summary(self, backend=None) -> ResilienceSummary:
        """Fault-tolerance totals, including the backend's respawn count.

        A backend exposing ``network_summary()`` (the wire backend) also
        contributes its network accounting — disconnects, heartbeat losses,
        reconnects, replayed messages — so wire runs are greppable from the
        same resilience report as in-process ones.
        """
        network = None
        network_summary = getattr(backend, "network_summary", None)
        if callable(network_summary):
            network = dict(network_summary()) or None
        return ResilienceSummary(
            network=network,
            quorum=self.quorum,
            retries=self.retries,
            gave_up=self.gave_up,
            respawns=int(getattr(backend, "respawns", 0)) if backend is not None else 0,
            dropped_clients=[
                getattr(self._clients[index], "client_id", index) if self._clients else index
                for index in sorted(self._failed)
            ],
            injected=self.plan.injected_counts(),
            backoff_seconds=self.backoff_seconds,
            renormalizations=[dict(record) for record in self._renormalizations],
            retry_policy=self.retry.describe(),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResilienceManager(quorum={self.quorum}, plan={self.plan!r}, "
            f"retry={self.retry.describe()!r})"
        )


def resilience_requested(
    quorum: float = 1.0,
    max_retries: Optional[int] = None,
    task_timeout: Optional[float] = None,
    crash_rate: float = 0.0,
    exception_rate: float = 0.0,
    timeout_rate: float = 0.0,
    corruption_rate: float = 0.0,
) -> bool:
    """Whether any fault-tolerance option departs from the inert defaults.

    The single source of truth shared by :func:`create_resilience` and the
    experiment configuration (the same contract ``scheduling_requested``
    provides for the scheduler), so "a resilience manager exists" and
    "resilience is reported" can never drift apart.
    """
    return (
        quorum != 1.0
        or max_retries is not None
        or task_timeout is not None
        or crash_rate > 0.0
        or exception_rate > 0.0
        or timeout_rate > 0.0
        or corruption_rate > 0.0
    )


def create_resilience(
    quorum: float = 1.0,
    max_retries: Optional[int] = None,
    task_timeout: Optional[float] = None,
    crash_rate: float = 0.0,
    exception_rate: float = 0.0,
    timeout_rate: float = 0.0,
    corruption_rate: float = 0.0,
    seed: int = 0,
) -> Optional[ResilienceManager]:
    """Build a :class:`ResilienceManager` from flat run options.

    Returns ``None`` when every option is at its default — no faults,
    quorum 1.0, no retry/timeout overrides — so the default configuration
    takes the unsupervised code path and stays bit-identical to
    pre-resilience behavior.
    """
    if not resilience_requested(
        quorum=quorum,
        max_retries=max_retries,
        task_timeout=task_timeout,
        crash_rate=crash_rate,
        exception_rate=exception_rate,
        timeout_rate=timeout_rate,
        corruption_rate=corruption_rate,
    ):
        return None
    plan = FaultPlan(
        crash_rate=crash_rate,
        exception_rate=exception_rate,
        timeout_rate=timeout_rate,
        corruption_rate=corruption_rate,
        seed=seed,
    )
    retry = RetryPolicy(
        max_retries=DEFAULT_MAX_RETRIES if max_retries is None else int(max_retries),
        task_timeout=task_timeout,
        seed=seed,
    )
    return ResilienceManager(plan=plan, retry=retry, quorum=quorum)


__all__ = [
    "ResilienceManager",
    "ResilienceSummary",
    "create_resilience",
    "resilience_requested",
]
