"""Deterministic, checkpointable fault injection.

A :class:`FaultPlan` decides — reproducibly — whether a given client task
fails this attempt, and how.  Each decision is drawn from a counter-based
RNG keyed ``[seed, FAULT_SEED_TAG, client_id, per-client draw counter]``,
the same :class:`numpy.random.SeedSequence` idiom the latency model uses:

* **order-independent** — the decision for client ``c``'s ``n``-th draw is
  the same no matter which backend ran the round or how tasks interleaved,
  so chaos runs are bit-reproducible across serial/thread/process;
* **checkpointable** — the per-client draw counters are the whole mutable
  state; :meth:`state`/:meth:`set_state` round-trip them so a resumed run
  replays exactly the faults the uninterrupted run would have seen.

Four fault kinds are supported, matching the injected-fault exception
vocabulary: ``crash``, ``exception``, ``timeout`` (all three strike
*before* the task runs, leaving the client's RNG untouched) and
``corruption`` (the task runs, then its upload bytes are flipped so the
CRC framing check rejects the payload at decode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

#: Domain-separation tag for fault draws (keeps fault randomness disjoint
#: from model init, sampling, availability, latency, and retry jitter).
FAULT_SEED_TAG = 0x4FA7

#: Fault kinds in cumulative-threshold order (the draw walks this order).
FAULT_KINDS = ("crash", "exception", "timeout", "corruption")


@dataclass(frozen=True)
class FaultDecision:
    """One fault draw: the kind to inject (``None`` = healthy) and a salt.

    ``salt`` parameterizes the fault deterministically — for corruption it
    picks which byte of the payload is flipped.
    """

    kind: Optional[str]
    salt: int = 0


class FaultPlan:
    """Seeded per-client fault probabilities with checkpointable counters.

    Parameters
    ----------
    crash_rate / exception_rate / timeout_rate / corruption_rate:
        Per-attempt probabilities, each in ``[0, 1]`` with a sum ≤ 1.
    seed:
        Base seed; combined with :data:`FAULT_SEED_TAG`, the client id, and
        a per-client draw counter for every decision.
    """

    def __init__(
        self,
        crash_rate: float = 0.0,
        exception_rate: float = 0.0,
        timeout_rate: float = 0.0,
        corruption_rate: float = 0.0,
        seed: int = 0,
    ):
        rates = {
            "crash": float(crash_rate),
            "exception": float(exception_rate),
            "timeout": float(timeout_rate),
            "corruption": float(corruption_rate),
        }
        for kind, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault {kind} rate must be in [0, 1], got {rate}")
        if sum(rates.values()) > 1.0 + 1e-12:
            raise ValueError(
                f"fault rates must sum to at most 1, got {sum(rates.values()):g}"
            )
        self.rates = rates
        self.seed = int(seed)
        #: Per-client draw counters (the mutable, checkpointable state).
        self._draws: Dict[str, int] = {}
        #: Per-kind injected-fault counts (diagnostics, also checkpointed).
        self._injected: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    @property
    def any_faults(self) -> bool:
        """Whether any fault kind has a nonzero probability."""
        return any(rate > 0.0 for rate in self.rates.values())

    def injected_counts(self) -> Dict[str, int]:
        """Per-kind counts of faults injected so far (a copy)."""
        return dict(self._injected)

    def draw(self, client_id: str) -> FaultDecision:
        """The next fault decision for ``client_id``.

        Each call advances that client's draw counter, so retries of the
        same client re-roll (a retried task can fail again, or heal).
        """
        if not self.any_faults:
            return FaultDecision(kind=None)
        # Counters are keyed by the *string* form of the id so they survive
        # any checkpoint serialization (JSON meta stringifies dict keys) and
        # so set_state's normalization always finds them again.
        key = str(client_id)
        counter = self._draws.get(key, 0)
        self._draws[key] = counter + 1
        entropy = [self.seed, FAULT_SEED_TAG, _client_key(client_id), counter]
        rng = np.random.default_rng(np.random.SeedSequence(entropy))
        uniform = float(rng.uniform())
        threshold = 0.0
        for kind in FAULT_KINDS:
            threshold += self.rates[kind]
            if uniform < threshold:
                self._injected[kind] += 1
                salt = int(rng.integers(0, 2**31 - 1)) if kind == "corruption" else 0
                return FaultDecision(kind=kind, salt=salt)
        return FaultDecision(kind=None)

    def describe(self) -> Dict[str, float]:
        """Static identity of the plan (rates + seed); goes into checkpoint
        fingerprints so a resume cannot silently change the fault model."""
        summary: Dict[str, float] = {f"{kind}_rate": rate for kind, rate in self.rates.items()}
        summary["seed"] = self.seed
        return summary

    def state(self) -> Dict[str, object]:
        """Mutable counters for checkpointing."""
        return {
            "draws": dict(self._draws),
            "injected": dict(self._injected),
        }

    def set_state(self, state: Dict[str, object]) -> None:
        """Restore counters captured by :meth:`state`."""
        self._draws = {str(key): int(value) for key, value in dict(state["draws"]).items()}
        injected = dict(state.get("injected", {}))
        self._injected = {kind: int(injected.get(kind, 0)) for kind in FAULT_KINDS}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        active = {kind: rate for kind, rate in self.rates.items() if rate > 0.0}
        return f"FaultPlan(seed={self.seed}, rates={active})"


def _client_key(client_id: str) -> int:
    """A stable non-negative integer key for a client id.

    ``hash`` is salted per interpreter run, so derive the key from the
    id's bytes (CRC-32 is stable across processes and platforms).
    """
    import zlib

    return zlib.crc32(str(client_id).encode("utf-8"))


__all__ = ["FAULT_KINDS", "FAULT_SEED_TAG", "FaultDecision", "FaultPlan"]
