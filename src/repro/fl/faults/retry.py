"""Retry policy: bounded attempts with deterministic seeded backoff.

The policy is *stateless* — backoff jitter is a pure function of
``(seed, client id, attempt)`` via the counter-based
:class:`numpy.random.SeedSequence` idiom, so retried schedules are
bit-reproducible across backends and across checkpoint resumes without
carrying any mutable RNG state.

Backoff elapses on the **virtual clock** (the same clock the scheduler's
latency model advances), never wall time: a chaos run with thousands of
retries finishes as fast as a healthy one while still accounting the
simulated seconds spent waiting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.fl.faults.plan import _client_key

#: Domain-separation tag for retry-jitter draws.
RETRY_SEED_TAG = 0x6B0F

#: Default bound on re-dispatches per task when supervision is requested
#: without an explicit ``max_retries``.
DEFAULT_MAX_RETRIES = 2


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential, deterministically jittered backoff.

    Parameters
    ----------
    max_retries:
        Re-dispatches allowed per task (0 = fail on first error).  A task
        therefore runs at most ``max_retries + 1`` times.
    backoff_base / backoff_factor:
        Virtual seconds waited before retry ``n`` (1-based) follow
        ``base * factor**(n-1)``, scaled by the jitter below.
    jitter:
        Relative jitter amplitude: the wait is multiplied by
        ``1 + jitter * u`` with ``u`` drawn uniformly from ``[0, 1)`` by a
        seeded counter-based RNG (deterministic per client and attempt).
    task_timeout:
        Optional per-task wall-clock timeout in seconds, enforced by the
        backends that can abandon a running task (the process pool; the
        thread pool stops *waiting* but cannot reclaim the thread; the
        serial backend ignores it — a task it runs has already finished).
    seed:
        Base seed for the jitter draws.
    """

    max_retries: int = DEFAULT_MAX_RETRIES
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    jitter: float = 0.1
    task_timeout: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if int(self.max_retries) < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0.0 or self.backoff_factor < 1.0 or self.jitter < 0.0:
            raise ValueError(
                "backoff_base must be >= 0, backoff_factor >= 1, jitter >= 0"
            )
        if self.task_timeout is not None and self.task_timeout <= 0.0:
            raise ValueError(f"task_timeout must be positive, got {self.task_timeout}")

    def backoff_seconds(self, client_id: str, attempt: int) -> float:
        """Virtual seconds to wait before re-dispatching ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        base = self.backoff_base * self.backoff_factor ** (attempt - 1)
        if self.jitter == 0.0 or base == 0.0:
            return float(base)
        entropy = [self.seed, RETRY_SEED_TAG, _client_key(client_id), attempt]
        rng = np.random.default_rng(np.random.SeedSequence(entropy))
        return float(base * (1.0 + self.jitter * float(rng.uniform())))

    def describe(self) -> str:
        """Short human-readable label used in reports."""
        parts = [f"max_retries={self.max_retries}"]
        if self.backoff_base:
            parts.append(f"backoff={self.backoff_base:g}s×{self.backoff_factor:g}")
        if self.task_timeout is not None:
            parts.append(f"timeout={self.task_timeout:g}s")
        return ", ".join(parts)


__all__ = ["DEFAULT_MAX_RETRIES", "RETRY_SEED_TAG", "RetryPolicy"]
