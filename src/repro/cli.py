"""Command-line interface.

Installs as the ``repro`` console script and exposes the library's main
entry points without writing any Python:

``repro list-models``
    The registered routability estimators and their parameter counts.
``repro list-algorithms``
    Every decentralized training algorithm in the registry.
``repro generate-data``
    Synthesize the 9-client corpus of Table 2 (or a reduced preset) and
    print the per-client design / placement statistics.
``repro route``
    Generate one synthetic design, place it, run the capacity-aware global
    router, and print placement / routing quality reports.
``repro reproduce``
    Re-run one of the paper's result tables (Table 3, 4, or 5) under a
    preset and print the per-client ROC AUC rows next to the paper's values.
    ``--workers N`` fans each round's client updates out over N worker
    processes (bit-identical to serial execution); ``--checkpoint-dir``
    enables per-round checkpoint/resume; ``--compression`` routes every
    broadcast/upload through a wire codec (identity casts, packed
    quantization, top-k sparsification) and reports *measured* payload
    bytes per round; ``--participation`` / ``--straggler-model`` /
    ``--round-policy {sync,deadline,fedbuff}`` simulate a real client
    population (partial cohorts, availability, stragglers on a virtual
    clock, deadline drops, buffered-asynchronous aggregation) and report
    participation and simulated wall-clock time; ``--quorum`` /
    ``--max-retries`` / ``--task-timeout`` / ``--fault-*-rate`` run the
    round loop under the fault-tolerant supervisor (seeded chaos
    injection, retries with deterministic backoff, quorum commits with
    weight renormalization) and report the resilience accounting.
``repro bench diff``
    Diff fresh ``benchmarks/results/*.json`` records against the committed
    baselines under ``benchmarks/baselines/`` per (op, config) key and exit
    nonzero on a regression beyond ``--tolerance`` — the CI perf gate.
``repro communication``
    Print the analytic communication cost of every algorithm for a model.

Every command accepts ``--help`` for its full set of options; see
``docs/cli.md`` for a complete reference.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional, Sequence

from repro.eda.benchmarks import generate_design, suite_names
from repro.eda.global_router import GlobalRouterConfig, route_placement
from repro.eda.placement import PlacementConfig, Placer
from repro.eda.quality import placement_quality, routing_quality
from repro.fl import (
    AGGREGATION_CHOICES,
    ALGORITHMS,
    AVAILABILITY_CHOICES,
    COMPRESSION_CHOICES,
    ROUND_POLICY_CHOICES,
    SAMPLER_CHOICES,
    STRAGGLER_CHOICES,
    estimate_communication,
)
from repro.models.registry import available_models, create_model
from repro.utils.threadpools import parse_blas_threads


def _add_list_models(subparsers) -> None:
    parser = subparsers.add_parser("list-models", help="list registered routability estimators")
    parser.add_argument("--channels", type=int, default=6, help="input feature channels used for sizing")
    parser.set_defaults(handler=_cmd_list_models)


def _cmd_list_models(args) -> int:
    print(f"{'Model':<12} {'Parameters':>12}")
    for name in available_models():
        model = create_model(name, in_channels=args.channels, seed=0)
        count = sum(param.data.size for _, param in model.named_parameters())
        print(f"{name:<12} {count:>12,d}")
    return 0


def _add_list_algorithms(subparsers) -> None:
    parser = subparsers.add_parser("list-algorithms", help="list decentralized training algorithms")
    parser.set_defaults(handler=_cmd_list_algorithms)


def _cmd_list_algorithms(args) -> int:
    print(f"{'Name':<22} {'Class':<22} Personalized result")
    for name, cls in sorted(ALGORITHMS.items()):
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"{name:<22} {cls.__name__:<22} {doc}")
    return 0


def _add_generate_data(subparsers) -> None:
    parser = subparsers.add_parser(
        "generate-data", help="synthesize the Table 2 corpus and print its statistics"
    )
    parser.add_argument("--preset", choices=("paper", "default", "smoke"), default="smoke")
    parser.add_argument("--cache-dir", default=None, help="directory to cache the synthesized corpus")
    parser.set_defaults(handler=_cmd_generate_data)


def _cmd_generate_data(args) -> int:
    from repro.data.clients import CorpusBuilder
    from repro.experiments import preset

    config = preset(args.preset)
    builder = CorpusBuilder(config.corpus)
    clients = builder.build_all(config.client_specs, args.cache_dir)
    print(f"{'Client':<10} {'Suite':<10} {'Train designs':>14} {'Train places':>13} {'Test designs':>13} {'Test places':>12}")
    for data in clients:
        spec = data.spec
        print(
            f"client{spec.client_id:<4d} {spec.suite:<10} {spec.train_designs:>14d} "
            f"{len(data.train):>13d} {spec.test_designs:>13d} {len(data.test):>12d}"
        )
    total_train = sum(len(data.train) for data in clients)
    total_test = sum(len(data.test) for data in clients)
    print(f"\nTotal placements: {total_train} train / {total_test} test")
    return 0


def _add_route(subparsers) -> None:
    parser = subparsers.add_parser(
        "route", help="place and globally route one synthetic design, printing quality reports"
    )
    parser.add_argument("--suite", choices=suite_names(), default="itc99")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cells", type=int, default=None, help="override the design's cell count")
    parser.add_argument("--grid", type=int, default=24, help="analysis grid size (bins per side)")
    parser.add_argument("--utilization", type=float, default=0.72)
    parser.add_argument("--max-ripup", type=int, default=4, help="negotiated rip-up iterations")
    parser.set_defaults(handler=_cmd_route)


def _cmd_route(args) -> int:
    design = generate_design(args.suite, f"{args.suite}_cli_{args.seed}", seed=args.seed, cell_count=args.cells)
    placement = Placer().place(
        design,
        PlacementConfig(
            grid_width=args.grid, grid_height=args.grid, utilization=args.utilization, seed=args.seed
        ),
    )
    place_report = placement_quality(placement)
    print("Placement quality")
    for key, value in place_report.to_dict().items():
        print(f"  {key:<22} {value}")

    routed = route_placement(placement, GlobalRouterConfig(max_ripup_iterations=args.max_ripup))
    route_report = routing_quality(routed)
    print("\nGlobal routing quality")
    for key, value in route_report.to_dict().items():
        print(f"  {key:<22} {value}")
    return 0


def _add_reproduce(subparsers) -> None:
    parser = subparsers.add_parser(
        "reproduce", help="re-run one of the paper's result tables (Tables 3-5)"
    )
    parser.add_argument("--model", choices=available_models(), default="flnet")
    parser.add_argument("--preset", choices=("paper", "default", "smoke"), default="smoke")
    parser.add_argument(
        "--algorithms",
        nargs="*",
        default=None,
        help="subset of algorithms to run (default: the full table)",
    )
    parser.add_argument("--cache-dir", default=None, help="directory to cache the synthesized corpus")
    parser.add_argument("--output", default=None, help="write the rendered table to this file")
    parser.add_argument(
        "--backend",
        choices=("auto", "serial", "process", "thread"),
        default="auto",
        help="execution backend for client updates (auto: process when --workers > 1; "
        "thread overlaps clients via GIL-releasing NumPy kernels with zero pickling)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="workers per round; 1 forces serial execution, >1 fans client "
        "updates out over the process/thread pool (results are bit-identical)",
    )
    parser.add_argument(
        "--blas-threads",
        type=parse_blas_threads,
        default="auto",
        metavar="{auto,N}",
        help="BLAS threads per worker: 'auto' (default) leaves serial runs to "
        "BLAS's own all-core threading and pins each pool worker to "
        "cores // workers threads so workers x BLAS-threads never "
        "oversubscribes; an integer pins every worker exactly",
    )
    parser.add_argument(
        "--compute-dtype",
        choices=("float64", "float32"),
        default=None,
        help="local-training arithmetic dtype (default float64, bit-identical to "
        "previous releases; float32 is the fast path — states, aggregation, and "
        "checkpoints stay float64 either way)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for per-round checkpoints; re-running with the same "
        "directory resumes interrupted global-state algorithms",
    )
    parser.add_argument(
        "--compression",
        choices=COMPRESSION_CHOICES,
        default=None,
        help="route every broadcast/upload through a wire codec and report "
        "measured bytes: none (bit-exact float64 identity), float32/float16 "
        "(cast), quantize (packed uniform quantization + DEFLATE, delta "
        "uploads), topk (sparsified delta uploads with error feedback)",
    )
    parser.add_argument(
        "--compression-bits",
        type=int,
        default=8,
        help="bits per value for --compression quantize (1-16, default 8)",
    )
    parser.add_argument(
        "--topk-fraction",
        type=float,
        default=0.1,
        help="fraction of entries kept by --compression topk (default 0.1)",
    )
    parser.add_argument(
        "--participation",
        type=float,
        default=None,
        help="fraction of clients sampled per round (partial participation; "
        "cohorts are seeded from the run seed and bit-reproducible)",
    )
    parser.add_argument(
        "--clients-per-round",
        type=int,
        default=None,
        help="absolute cohort size per round (alternative to --participation)",
    )
    parser.add_argument(
        "--sampler",
        choices=SAMPLER_CHOICES,
        default=None,
        help="cohort sampling rule: full, uniform, or weighted "
        "(importance sampling by client sample count)",
    )
    parser.add_argument(
        "--availability",
        choices=AVAILABILITY_CHOICES,
        default=None,
        help="per-client availability model: always (default), bernoulli "
        "(each query succeeds with --availability-rate), daynight "
        "(phased duty cycles on the virtual clock)",
    )
    parser.add_argument(
        "--availability-rate",
        type=float,
        default=0.9,
        help="bernoulli success probability / daynight duty fraction (default 0.9)",
    )
    parser.add_argument(
        "--straggler-model",
        choices=STRAGGLER_CHOICES,
        default=None,
        help="simulated round-trip latency per dispatched client: none, "
        "uniform, lognormal, heavytail (Pareto); drives the virtual clock "
        "and the deadline/fedbuff policies",
    )
    parser.add_argument(
        "--round-policy",
        choices=ROUND_POLICY_CHOICES,
        default="sync",
        help="what the server does with straggler updates: sync (barrier), "
        "deadline (drop updates later than --deadline, over-selecting by "
        "--over-selection), fedbuff (buffered-asynchronous aggregation)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="round cutoff in virtual seconds for --round-policy deadline",
    )
    parser.add_argument(
        "--over-selection",
        type=float,
        default=1.0,
        help="cohort inflation factor under the deadline policy (default 1.0; "
        "1.3 selects 30%% extra clients expecting drops)",
    )
    parser.add_argument(
        "--buffer-size",
        type=int,
        default=2,
        help="updates buffered per aggregation for --round-policy fedbuff (default 2)",
    )
    parser.add_argument(
        "--population",
        type=int,
        default=None,
        help="virtualize the roster to this many lazily constructed clients "
        "(each reusing one base data partition round-robin); requires "
        "--clients-per-round or --participation so only the sampled cohort "
        "is ever built",
    )
    parser.add_argument(
        "--aggregation",
        choices=AGGREGATION_CHOICES,
        default="gemv",
        help="server aggregation mode: gemv (historical (K,P) matrix), "
        "streaming (O(P) running fold, releases each update after folding), "
        "sharded (parallel sub-aggregators with a deterministic merge); "
        "streaming/sharded are bit-identical to gemv for cohorts up to the "
        "parity limit",
    )
    parser.add_argument(
        "--quorum",
        type=float,
        default=1.0,
        help="fraction of the per-round cohort that must deliver an update "
        "before the round commits (default 1.0); clients that exhaust their "
        "retries are dropped permanently with the aggregation weights "
        "renormalized, and a sub-quorum round checkpoints and aborts",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="supervised retries per client task before it counts as failed "
        "(default 2 once any fault-tolerance option is active)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="wall-clock seconds allowed per client task before the "
        "supervisor retries it (process/thread backends)",
    )
    parser.add_argument(
        "--fault-crash-rate",
        type=float,
        default=0.0,
        help="chaos testing: per-attempt probability of a simulated worker "
        "crash (deterministic for a given seed)",
    )
    parser.add_argument(
        "--fault-exception-rate",
        type=float,
        default=0.0,
        help="chaos testing: per-attempt probability of a simulated client "
        "exception",
    )
    parser.add_argument(
        "--fault-timeout-rate",
        type=float,
        default=0.0,
        help="chaos testing: per-attempt probability of a simulated task "
        "timeout",
    )
    parser.add_argument(
        "--fault-corruption-rate",
        type=float,
        default=0.0,
        help="chaos testing: per-attempt probability of flipping one byte of "
        "the upload payload (caught by the transport CRC and retried; "
        "needs --compression for a wire payload to corrupt)",
    )
    parser.set_defaults(handler=_cmd_reproduce)


def _cmd_reproduce(args) -> int:
    from repro.experiments import (
        ExperimentRunner,
        communication_text,
        comparison_table,
        format_rows,
        preset,
        resilience_text,
        scheduling_text,
    )
    from repro.fl import QuorumFailure

    config = preset(args.preset, model=args.model)
    if args.algorithms:
        unknown = [name for name in args.algorithms if name not in ALGORITHMS]
        if unknown:
            print(f"error: unknown algorithms {unknown}; available: {sorted(ALGORITHMS)}", file=sys.stderr)
            return 2
        config = config.with_algorithms(args.algorithms)
    try:
        config = config.with_execution(
            backend=args.backend,
            workers=args.workers,
            blas_threads=args.blas_threads,
            checkpoint_dir=args.checkpoint_dir,
            compute_dtype=args.compute_dtype,
        ).with_transport(
            compression=args.compression,
            compression_bits=args.compression_bits,
            topk_fraction=args.topk_fraction,
        ).with_scheduling(
            participation=args.participation,
            clients_per_round=args.clients_per_round,
            sampler=args.sampler,
            availability=args.availability,
            availability_rate=args.availability_rate,
            straggler_model=args.straggler_model,
            round_policy=args.round_policy,
            deadline=args.deadline,
            over_selection=args.over_selection,
            buffer_size=args.buffer_size,
        ).with_population(
            population=args.population,
            aggregation=args.aggregation,
        ).with_resilience(
            quorum=args.quorum,
            max_retries=args.max_retries,
            task_timeout=args.task_timeout,
            fault_crash_rate=args.fault_crash_rate,
            fault_exception_rate=args.fault_exception_rate,
            fault_timeout_rate=args.fault_timeout_rate,
            fault_corruption_rate=args.fault_corruption_rate,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    runner = ExperimentRunner(config, cache_dir=args.cache_dir)
    try:
        result = runner.run()
    except QuorumFailure as failure:
        # Graceful degradation hit its floor: the round could not gather
        # enough updates even after retries and drops.  The run state up to
        # the failed round is already checkpointed (when --checkpoint-dir
        # is set), so re-running the same command resumes from there.
        print(
            f"error: quorum failure at round {failure.round_index}: "
            f"{failure.arrived}/{failure.cohort_size} clients delivered an "
            f"update but {failure.required} were required",
            file=sys.stderr,
        )
        if failure.checkpoint_dir is not None:
            print(
                f"progress up to the failed round is checkpointed under "
                f"{failure.checkpoint_dir}; re-run the same command to resume",
                file=sys.stderr,
            )
        return 3
    except ValueError as error:
        # e.g. resuming from a checkpoint directory written by a different run
        print(f"error: {error}", file=sys.stderr)
        return 2
    title = f"ROC AUC on routability prediction with {args.model} ({args.preset} preset)"
    text = format_rows(result.rows, title=title)
    measured = {row.algorithm: row.average_auc for row in result.rows}
    text += "\n\nAverage AUC, paper vs. this reproduction (synthetic substrate):\n"
    text += comparison_table(args.model, measured)
    if args.compression is not None:
        text += f"\n\nMeasured communication (--compression {args.compression}):\n"
        text += communication_text(result)
    if config.scheduling_requested:
        text += f"\n\nClient scheduling (--round-policy {args.round_policy}):\n"
        text += scheduling_text(result)
    if config.resilience_requested:
        text += f"\n\nFault tolerance (--quorum {args.quorum}):\n"
        text += resilience_text(result)
    if config.fl.compute_dtype != "float64":
        text += (
            f"\n\ncompute dtype {config.fl.compute_dtype}: local training ran in the "
            "reduced-precision fast path (parameter states, aggregation, and "
            "checkpoints stay float64)"
        )
    if config.population is not None:
        text += f"\n\nPopulation-scale federation (--population {config.population}):\n"
        for outcome in result.outcomes:
            summary = outcome.population
            if summary is None:
                continue
            text += (
                f"  {outcome.algorithm}: population={summary['population']} "
                f"aggregation={summary['aggregation']} "
                f"eager_before_sampling={summary['eager_clients_before_sampling']} "
                f"peak_materialized={summary['peak_materialized']} "
                f"total_materializations={summary['total_materializations']} "
                f"folded_updates={summary['folded_updates']}\n"
            )
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\nwritten to {args.output}")
    return 0


def _add_bench(subparsers) -> None:
    parser = subparsers.add_parser(
        "bench", help="benchmark record tooling (perf-regression gate)"
    )
    bench_subparsers = parser.add_subparsers(dest="bench_command", required=True)
    diff = bench_subparsers.add_parser(
        "diff",
        help="diff fresh benchmarks/results/*.json against committed baselines; "
        "exits nonzero on a regression beyond tolerance",
    )
    diff.add_argument(
        "--results",
        default="benchmarks/results",
        help="directory of fresh benchmark records (default: benchmarks/results)",
    )
    diff.add_argument(
        "--baselines",
        default="benchmarks/baselines",
        help="directory of committed baseline records (default: benchmarks/baselines)",
    )
    diff.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="relative slowdown tolerated before a record counts as a "
        "regression (default 0.25, i.e. 25%% slower fails)",
    )
    diff.add_argument(
        "--names",
        nargs="*",
        default=None,
        help="compare only these benchmark names (default: every committed baseline)",
    )
    diff.set_defaults(handler=_cmd_bench_diff)


def _cmd_bench_diff(args) -> int:
    from repro.utils.benchgate import (
        DEFAULT_TOLERANCE,
        diff_directories,
        format_table,
        has_regression,
    )

    tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    try:
        rows, warnings = diff_directories(
            args.baselines, args.results, tolerance=tolerance, names=args.names
        )
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    print(f"benchmark gate: tolerance {tolerance:.0%}")
    print(format_table(rows))
    if has_regression(rows):
        print("\nFAIL: at least one benchmark regressed beyond tolerance", file=sys.stderr)
        return 1
    print("\nOK: no regression beyond tolerance")
    return 0


def _add_communication(subparsers) -> None:
    parser = subparsers.add_parser(
        "communication", help="analytic communication cost of every algorithm"
    )
    parser.add_argument("--model", choices=available_models(), default="flnet")
    parser.add_argument("--channels", type=int, default=6)
    parser.add_argument("--clients", type=int, default=9)
    parser.add_argument("--rounds", type=int, default=50)
    parser.set_defaults(handler=_cmd_communication)


def _cmd_communication(args) -> int:
    model = create_model(args.model, in_channels=args.channels, seed=0)
    state = model.state_dict()
    print(
        f"Communication cost of {args.model} ({args.clients} clients, {args.rounds} rounds)\n"
        f"{'Algorithm':<22} {'Uplink/round':>14} {'Downlink/round':>16} {'Total (MB)':>12}"
    )
    for name in sorted(ALGORITHMS):
        if name == "dp_fedprox":
            report = estimate_communication("fedprox", state, args.clients, args.rounds)
            report = type(report)(
                algorithm=name,
                rounds=report.rounds,
                num_clients=report.num_clients,
                uplink_bytes_per_round=report.uplink_bytes_per_round,
                downlink_bytes_per_round=report.downlink_bytes_per_round,
            )
        else:
            report = estimate_communication(name, state, args.clients, args.rounds)
        total_mb = report.total_bytes / 1e6
        print(
            f"{name:<22} {report.uplink_bytes_per_round:>14,d} "
            f"{report.downlink_bytes_per_round:>16,d} {total_mb:>12.2f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Federated routability estimation (DAC 2022 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_list_models(subparsers)
    _add_list_algorithms(subparsers)
    _add_generate_data(subparsers)
    _add_route(subparsers)
    _add_reproduce(subparsers)
    _add_bench(subparsers)
    _add_communication(subparsers)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    # Surface the library's informational logs (e.g. "resuming from
    # checkpoint round N") on stderr when running from the command line.
    logging.basicConfig(level=logging.INFO, format="%(name)s: %(message)s")
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return int(args.handler(args))


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
