"""Command-line interface.

Installs as the ``repro`` console script and exposes the library's main
entry points without writing any Python:

``repro list-models``
    The registered routability estimators and their parameter counts.
``repro list-algorithms``
    Every decentralized training algorithm in the registry.
``repro generate-data``
    Synthesize the 9-client corpus of Table 2 (or a reduced preset) and
    print the per-client design / placement statistics.
``repro route``
    Generate one synthetic design, place it, run the capacity-aware global
    router, and print placement / routing quality reports.
``repro reproduce``
    Re-run one of the paper's result tables (Table 3, 4, or 5) under a
    preset and print the per-client ROC AUC rows next to the paper's values.
    ``--workers N`` fans each round's client updates out over N worker
    processes (bit-identical to serial execution); ``--checkpoint-dir``
    enables per-round checkpoint/resume; ``--compression`` routes every
    broadcast/upload through a wire codec (identity casts, packed
    quantization, top-k sparsification) and reports *measured* payload
    bytes per round; ``--participation`` / ``--straggler-model`` /
    ``--round-policy {sync,deadline,fedbuff}`` simulate a real client
    population (partial cohorts, availability, stragglers on a virtual
    clock, deadline drops, buffered-asynchronous aggregation) and report
    participation and simulated wall-clock time; ``--quorum`` /
    ``--max-retries`` / ``--task-timeout`` / ``--fault-*-rate`` run the
    round loop under the fault-tolerant supervisor (seeded chaos
    injection, retries with deterministic backoff, quorum commits with
    weight renormalization) and report the resilience accounting.
``repro bench diff``
    Diff fresh ``benchmarks/results/*.json`` records against the committed
    baselines under ``benchmarks/baselines/`` per (op, config) key and exit
    nonzero on a regression beyond ``--tolerance`` — the CI perf gate.
``repro communication``
    Print the analytic communication cost of every algorithm for a model.

Every command accepts ``--help`` for its full set of options; see
``docs/cli.md`` for a complete reference.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional, Sequence

from repro.eda.benchmarks import generate_design, suite_names
from repro.eda.global_router import GlobalRouterConfig, route_placement
from repro.eda.placement import PlacementConfig, Placer
from repro.eda.quality import placement_quality, routing_quality
from repro.fl import (
    AGGREGATION_CHOICES,
    ALGORITHMS,
    AVAILABILITY_CHOICES,
    COMPRESSION_CHOICES,
    ROUND_POLICY_CHOICES,
    SAMPLER_CHOICES,
    STRAGGLER_CHOICES,
    estimate_communication,
)
from repro.models.registry import available_models, create_model
from repro.utils.threadpools import parse_blas_threads


def _add_list_models(subparsers) -> None:
    parser = subparsers.add_parser("list-models", help="list registered routability estimators")
    parser.add_argument("--channels", type=int, default=6, help="input feature channels used for sizing")
    parser.set_defaults(handler=_cmd_list_models)


def _cmd_list_models(args) -> int:
    print(f"{'Model':<12} {'Parameters':>12}")
    for name in available_models():
        model = create_model(name, in_channels=args.channels, seed=0)
        count = sum(param.data.size for _, param in model.named_parameters())
        print(f"{name:<12} {count:>12,d}")
    return 0


def _add_list_algorithms(subparsers) -> None:
    parser = subparsers.add_parser("list-algorithms", help="list decentralized training algorithms")
    parser.set_defaults(handler=_cmd_list_algorithms)


def _cmd_list_algorithms(args) -> int:
    print(f"{'Name':<22} {'Class':<22} Personalized result")
    for name, cls in sorted(ALGORITHMS.items()):
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"{name:<22} {cls.__name__:<22} {doc}")
    return 0


def _add_generate_data(subparsers) -> None:
    parser = subparsers.add_parser(
        "generate-data", help="synthesize the Table 2 corpus and print its statistics"
    )
    parser.add_argument("--preset", choices=("paper", "default", "smoke"), default="smoke")
    parser.add_argument("--cache-dir", default=None, help="directory to cache the synthesized corpus")
    parser.set_defaults(handler=_cmd_generate_data)


def _cmd_generate_data(args) -> int:
    from repro.data.clients import CorpusBuilder
    from repro.experiments import preset

    config = preset(args.preset)
    builder = CorpusBuilder(config.corpus)
    clients = builder.build_all(config.client_specs, args.cache_dir)
    print(f"{'Client':<10} {'Suite':<10} {'Train designs':>14} {'Train places':>13} {'Test designs':>13} {'Test places':>12}")
    for data in clients:
        spec = data.spec
        print(
            f"client{spec.client_id:<4d} {spec.suite:<10} {spec.train_designs:>14d} "
            f"{len(data.train):>13d} {spec.test_designs:>13d} {len(data.test):>12d}"
        )
    total_train = sum(len(data.train) for data in clients)
    total_test = sum(len(data.test) for data in clients)
    print(f"\nTotal placements: {total_train} train / {total_test} test")
    return 0


def _add_route(subparsers) -> None:
    parser = subparsers.add_parser(
        "route", help="place and globally route one synthetic design, printing quality reports"
    )
    parser.add_argument("--suite", choices=suite_names(), default="itc99")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cells", type=int, default=None, help="override the design's cell count")
    parser.add_argument("--grid", type=int, default=24, help="analysis grid size (bins per side)")
    parser.add_argument("--utilization", type=float, default=0.72)
    parser.add_argument("--max-ripup", type=int, default=4, help="negotiated rip-up iterations")
    parser.set_defaults(handler=_cmd_route)


def _cmd_route(args) -> int:
    design = generate_design(args.suite, f"{args.suite}_cli_{args.seed}", seed=args.seed, cell_count=args.cells)
    placement = Placer().place(
        design,
        PlacementConfig(
            grid_width=args.grid, grid_height=args.grid, utilization=args.utilization, seed=args.seed
        ),
    )
    place_report = placement_quality(placement)
    print("Placement quality")
    for key, value in place_report.to_dict().items():
        print(f"  {key:<22} {value}")

    routed = route_placement(placement, GlobalRouterConfig(max_ripup_iterations=args.max_ripup))
    route_report = routing_quality(routed)
    print("\nGlobal routing quality")
    for key, value in route_report.to_dict().items():
        print(f"  {key:<22} {value}")
    return 0


def _add_reproduce(subparsers) -> None:
    parser = subparsers.add_parser(
        "reproduce", help="re-run one of the paper's result tables (Tables 3-5)"
    )
    parser.add_argument("--model", choices=available_models(), default="flnet")
    parser.add_argument("--preset", choices=("paper", "default", "smoke"), default="smoke")
    parser.add_argument(
        "--algorithms",
        nargs="*",
        default=None,
        help="subset of algorithms to run (default: the full table)",
    )
    parser.add_argument("--cache-dir", default=None, help="directory to cache the synthesized corpus")
    parser.add_argument("--output", default=None, help="write the rendered table to this file")
    parser.add_argument(
        "--backend",
        choices=("auto", "serial", "process", "thread"),
        default="auto",
        help="execution backend for client updates (auto: process when --workers > 1; "
        "thread overlaps clients via GIL-releasing NumPy kernels with zero pickling)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="workers per round; 1 forces serial execution, >1 fans client "
        "updates out over the process/thread pool (results are bit-identical)",
    )
    parser.add_argument(
        "--blas-threads",
        type=parse_blas_threads,
        default="auto",
        metavar="{auto,N}",
        help="BLAS threads per worker: 'auto' (default) leaves serial runs to "
        "BLAS's own all-core threading and pins each pool worker to "
        "cores // workers threads so workers x BLAS-threads never "
        "oversubscribes; an integer pins every worker exactly",
    )
    parser.add_argument(
        "--compute-dtype",
        choices=("float64", "float32"),
        default=None,
        help="local-training arithmetic dtype (default float64, bit-identical to "
        "previous releases; float32 is the fast path — states, aggregation, and "
        "checkpoints stay float64 either way)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for per-round checkpoints; re-running with the same "
        "directory resumes interrupted global-state algorithms",
    )
    parser.add_argument(
        "--compression",
        choices=COMPRESSION_CHOICES,
        default=None,
        help="route every broadcast/upload through a wire codec and report "
        "measured bytes: none (bit-exact float64 identity), float32/float16 "
        "(cast), quantize (packed uniform quantization + DEFLATE, delta "
        "uploads), topk (sparsified delta uploads with error feedback)",
    )
    parser.add_argument(
        "--compression-bits",
        type=int,
        default=8,
        help="bits per value for --compression quantize (1-16, default 8)",
    )
    parser.add_argument(
        "--topk-fraction",
        type=float,
        default=0.1,
        help="fraction of entries kept by --compression topk (default 0.1)",
    )
    parser.add_argument(
        "--participation",
        type=float,
        default=None,
        help="fraction of clients sampled per round (partial participation; "
        "cohorts are seeded from the run seed and bit-reproducible)",
    )
    parser.add_argument(
        "--clients-per-round",
        type=int,
        default=None,
        help="absolute cohort size per round (alternative to --participation)",
    )
    parser.add_argument(
        "--sampler",
        choices=SAMPLER_CHOICES,
        default=None,
        help="cohort sampling rule: full, uniform, or weighted "
        "(importance sampling by client sample count)",
    )
    parser.add_argument(
        "--availability",
        choices=AVAILABILITY_CHOICES,
        default=None,
        help="per-client availability model: always (default), bernoulli "
        "(each query succeeds with --availability-rate), daynight "
        "(phased duty cycles on the virtual clock)",
    )
    parser.add_argument(
        "--availability-rate",
        type=float,
        default=0.9,
        help="bernoulli success probability / daynight duty fraction (default 0.9)",
    )
    parser.add_argument(
        "--straggler-model",
        choices=STRAGGLER_CHOICES,
        default=None,
        help="simulated round-trip latency per dispatched client: none, "
        "uniform, lognormal, heavytail (Pareto); drives the virtual clock "
        "and the deadline/fedbuff policies",
    )
    parser.add_argument(
        "--round-policy",
        choices=ROUND_POLICY_CHOICES,
        default="sync",
        help="what the server does with straggler updates: sync (barrier), "
        "deadline (drop updates later than --deadline, over-selecting by "
        "--over-selection), fedbuff (buffered-asynchronous aggregation)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="round cutoff in virtual seconds for --round-policy deadline",
    )
    parser.add_argument(
        "--over-selection",
        type=float,
        default=1.0,
        help="cohort inflation factor under the deadline policy (default 1.0; "
        "1.3 selects 30%% extra clients expecting drops)",
    )
    parser.add_argument(
        "--buffer-size",
        type=int,
        default=2,
        help="updates buffered per aggregation for --round-policy fedbuff (default 2)",
    )
    parser.add_argument(
        "--population",
        type=int,
        default=None,
        help="virtualize the roster to this many lazily constructed clients "
        "(each reusing one base data partition round-robin); requires "
        "--clients-per-round or --participation so only the sampled cohort "
        "is ever built",
    )
    parser.add_argument(
        "--aggregation",
        choices=AGGREGATION_CHOICES,
        default="gemv",
        help="server aggregation mode: gemv (historical (K,P) matrix), "
        "streaming (O(P) running fold, releases each update after folding), "
        "sharded (parallel sub-aggregators with a deterministic merge); "
        "streaming/sharded are bit-identical to gemv for cohorts up to the "
        "parity limit",
    )
    parser.add_argument(
        "--quorum",
        type=float,
        default=1.0,
        help="fraction of the per-round cohort that must deliver an update "
        "before the round commits (default 1.0); clients that exhaust their "
        "retries are dropped permanently with the aggregation weights "
        "renormalized, and a sub-quorum round checkpoints and aborts",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="supervised retries per client task before it counts as failed "
        "(default 2 once any fault-tolerance option is active)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="wall-clock seconds allowed per client task before the "
        "supervisor retries it (process/thread backends)",
    )
    parser.add_argument(
        "--fault-crash-rate",
        type=float,
        default=0.0,
        help="chaos testing: per-attempt probability of a simulated worker "
        "crash (deterministic for a given seed)",
    )
    parser.add_argument(
        "--fault-exception-rate",
        type=float,
        default=0.0,
        help="chaos testing: per-attempt probability of a simulated client "
        "exception",
    )
    parser.add_argument(
        "--fault-timeout-rate",
        type=float,
        default=0.0,
        help="chaos testing: per-attempt probability of a simulated task "
        "timeout",
    )
    parser.add_argument(
        "--fault-corruption-rate",
        type=float,
        default=0.0,
        help="chaos testing: per-attempt probability of flipping one byte of "
        "the upload payload (caught by the transport CRC and retried; "
        "needs --compression for a wire payload to corrupt)",
    )
    _add_state_digest_option(parser)
    parser.set_defaults(handler=_cmd_reproduce)


def _add_state_digest_option(parser) -> None:
    parser.add_argument(
        "--state-digest",
        action="store_true",
        help="print a SHA-256 digest of every final model state "
        "(`state digest <algorithm> <scope> <hex>`); two runs are "
        "bit-identical iff their digest lines match — the witness the "
        "wire-smoke CI job diffs between a wire and a serial run",
    )


def _print_state_digests(outcomes) -> None:
    from repro.fl.parameters import state_digest

    for outcome in outcomes:
        training = outcome.training
        if training.global_state is not None:
            print(f"state digest {outcome.algorithm} global {state_digest(training.global_state)}")
        for client_id in sorted(training.client_states):
            print(
                f"state digest {outcome.algorithm} client{client_id} "
                f"{state_digest(training.client_states[client_id])}"
            )


def _cmd_reproduce(args) -> int:
    from repro.experiments import (
        ExperimentRunner,
        communication_text,
        comparison_table,
        format_rows,
        preset,
        resilience_text,
        scheduling_text,
    )
    from repro.fl import QuorumFailure

    config = preset(args.preset, model=args.model)
    if args.algorithms:
        unknown = [name for name in args.algorithms if name not in ALGORITHMS]
        if unknown:
            print(f"error: unknown algorithms {unknown}; available: {sorted(ALGORITHMS)}", file=sys.stderr)
            return 2
        config = config.with_algorithms(args.algorithms)
    try:
        config = config.with_execution(
            backend=args.backend,
            workers=args.workers,
            blas_threads=args.blas_threads,
            checkpoint_dir=args.checkpoint_dir,
            compute_dtype=args.compute_dtype,
        ).with_transport(
            compression=args.compression,
            compression_bits=args.compression_bits,
            topk_fraction=args.topk_fraction,
        ).with_scheduling(
            participation=args.participation,
            clients_per_round=args.clients_per_round,
            sampler=args.sampler,
            availability=args.availability,
            availability_rate=args.availability_rate,
            straggler_model=args.straggler_model,
            round_policy=args.round_policy,
            deadline=args.deadline,
            over_selection=args.over_selection,
            buffer_size=args.buffer_size,
        ).with_population(
            population=args.population,
            aggregation=args.aggregation,
        ).with_resilience(
            quorum=args.quorum,
            max_retries=args.max_retries,
            task_timeout=args.task_timeout,
            fault_crash_rate=args.fault_crash_rate,
            fault_exception_rate=args.fault_exception_rate,
            fault_timeout_rate=args.fault_timeout_rate,
            fault_corruption_rate=args.fault_corruption_rate,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    runner = ExperimentRunner(config, cache_dir=args.cache_dir)
    try:
        result = runner.run()
    except QuorumFailure as failure:
        # Graceful degradation hit its floor: the round could not gather
        # enough updates even after retries and drops.  The run state up to
        # the failed round is already checkpointed (when --checkpoint-dir
        # is set), so re-running the same command resumes from there.
        print(
            f"error: quorum failure at round {failure.round_index}: "
            f"{failure.arrived}/{failure.cohort_size} clients delivered an "
            f"update but {failure.required} were required",
            file=sys.stderr,
        )
        if failure.checkpoint_dir is not None:
            print(
                f"progress up to the failed round is checkpointed under "
                f"{failure.checkpoint_dir}; re-run the same command to resume",
                file=sys.stderr,
            )
        return 3
    except ValueError as error:
        # e.g. resuming from a checkpoint directory written by a different run
        print(f"error: {error}", file=sys.stderr)
        return 2
    title = f"ROC AUC on routability prediction with {args.model} ({args.preset} preset)"
    text = format_rows(result.rows, title=title)
    measured = {row.algorithm: row.average_auc for row in result.rows}
    text += "\n\nAverage AUC, paper vs. this reproduction (synthetic substrate):\n"
    text += comparison_table(args.model, measured)
    if args.compression is not None:
        text += f"\n\nMeasured communication (--compression {args.compression}):\n"
        text += communication_text(result)
    if config.scheduling_requested:
        text += f"\n\nClient scheduling (--round-policy {args.round_policy}):\n"
        text += scheduling_text(result)
    if config.resilience_requested:
        text += f"\n\nFault tolerance (--quorum {args.quorum}):\n"
        text += resilience_text(result)
    if config.fl.compute_dtype != "float64":
        text += (
            f"\n\ncompute dtype {config.fl.compute_dtype}: local training ran in the "
            "reduced-precision fast path (parameter states, aggregation, and "
            "checkpoints stay float64)"
        )
    if config.population is not None:
        text += f"\n\nPopulation-scale federation (--population {config.population}):\n"
        for outcome in result.outcomes:
            summary = outcome.population
            if summary is None:
                continue
            text += (
                f"  {outcome.algorithm}: population={summary['population']} "
                f"aggregation={summary['aggregation']} "
                f"eager_before_sampling={summary['eager_clients_before_sampling']} "
                f"peak_materialized={summary['peak_materialized']} "
                f"total_materializations={summary['total_materializations']} "
                f"folded_updates={summary['folded_updates']}\n"
            )
    print(text)
    if args.state_digest:
        _print_state_digests(result.outcomes)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\nwritten to {args.output}")
    return 0


def _add_serve(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="run a federation server: dispatch rounds to repro-join processes "
        "over the framed wire protocol (bit-identical to an in-process run)",
    )
    parser.add_argument("--model", choices=available_models(), default="flnet")
    parser.add_argument("--preset", choices=("paper", "default", "smoke"), default="smoke")
    parser.add_argument(
        "--algorithms",
        nargs="*",
        default=None,
        help="algorithms to run over the wire (default: fedprox)",
    )
    parser.add_argument("--cache-dir", default=None, help="directory to cache the synthesized corpus")
    parser.add_argument(
        "--compute-dtype",
        choices=("float64", "float32"),
        default=None,
        help="local-training arithmetic dtype (must match the joiners')",
    )
    parser.add_argument("--host", default="127.0.0.1", help="address to bind (default 127.0.0.1)")
    parser.add_argument(
        "--port",
        type=int,
        default=7733,
        help="TCP port to listen on (default 7733; 0 picks a free port, "
        "printed on the `serving federation` line)",
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=2.0,
        help="seconds between liveness probes to each connected joiner (default 2)",
    )
    parser.add_argument(
        "--client-timeout",
        type=float,
        default=10.0,
        help="seconds of silence before a joiner counts as lost, and how long "
        "a lost joiner may take to reconnect before its in-flight tasks fail "
        "over to the retry machinery (default 10; must exceed the heartbeat "
        "interval)",
    )
    parser.add_argument(
        "--journal-dir",
        default=None,
        help="directory for the append-only dispatch journal backing "
        "reconnect-with-resume (default: a temporary directory)",
    )
    parser.add_argument(
        "--wait-clients",
        type=float,
        default=60.0,
        help="seconds to wait for every roster client to connect before the "
        "first round (default 60; 0 starts dispatching immediately)",
    )
    parser.add_argument(
        "--quorum",
        type=float,
        default=1.0,
        help="fraction of the cohort that must deliver an update per round "
        "(see `repro reproduce --quorum`)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="supervised retries per client task before it counts as failed",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="wall-clock seconds allowed per dispatched task before the "
        "supervisor abandons and retries it",
    )
    parser.add_argument(
        "--wire-fault-disconnect-rate",
        type=float,
        default=0.0,
        help="chaos testing: per-send probability of dropping the connection "
        "instead of delivering a task frame (seeded; heals via replay)",
    )
    parser.add_argument(
        "--wire-fault-delay-rate",
        type=float,
        default=0.0,
        help="chaos testing: per-send probability of withholding a task frame "
        "for up to --wire-delay-seconds",
    )
    parser.add_argument(
        "--wire-fault-corrupt-rate",
        type=float,
        default=0.0,
        help="chaos testing: per-send probability of flipping one byte of a "
        "task frame (rejected by the peer's CRC check; heals via replay)",
    )
    parser.add_argument(
        "--wire-delay-seconds",
        type=float,
        default=0.05,
        help="maximum hold time for injected delays (default 0.05)",
    )
    parser.add_argument("--output", default=None, help="write the rendered table to this file")
    _add_state_digest_option(parser)
    parser.set_defaults(handler=_cmd_serve)


def _cmd_serve(args) -> int:
    from repro.experiments import ExperimentRunner, format_rows, preset, resilience_text
    from repro.experiments.runner import ExperimentResult
    from repro.fl import QuorumFailure

    config = preset(args.preset, model=args.model)
    algorithms = args.algorithms if args.algorithms else ["fedprox"]
    unknown = [name for name in algorithms if name not in ALGORITHMS]
    if unknown:
        print(f"error: unknown algorithms {unknown}; available: {sorted(ALGORITHMS)}", file=sys.stderr)
        return 2
    try:
        config = config.with_algorithms(algorithms).with_execution(
            backend="wire",
            compute_dtype=args.compute_dtype,
        ).with_resilience(
            quorum=args.quorum,
            max_retries=args.max_retries,
            task_timeout=args.task_timeout,
        ).with_wire(
            wire_host=args.host,
            wire_port=args.port,
            heartbeat_interval=args.heartbeat_interval,
            client_timeout=args.client_timeout,
            wire_journal_dir=args.journal_dir,
            wire_fault_disconnect_rate=args.wire_fault_disconnect_rate,
            wire_fault_delay_rate=args.wire_fault_delay_rate,
            wire_fault_corrupt_rate=args.wire_fault_corrupt_rate,
            wire_delay_seconds=args.wire_delay_seconds,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    runner = ExperimentRunner(config, cache_dir=args.cache_dir)
    clients = runner.federated_clients()
    backend = runner.execution_backend()
    result = ExperimentResult(config=config)
    try:
        port = backend.listen([client.client_id for client in clients])
        print(
            f"serving federation on {config.wire_host}:{port} for clients "
            f"{[client.client_id for client in clients]}",
            flush=True,
        )
        if args.wait_clients > 0:
            if not backend.wait_for_clients(args.wait_clients):
                print(
                    f"error: not every client connected within {args.wait_clients:g}s",
                    file=sys.stderr,
                )
                return 4
            print("all clients connected; starting training", flush=True)
        for name in config.algorithms:
            result.outcomes.append(runner.run_algorithm(name, clients, backend=backend))
    except QuorumFailure as failure:
        print(
            f"error: quorum failure at round {failure.round_index}: "
            f"{failure.arrived}/{failure.cohort_size} clients delivered an "
            f"update but {failure.required} were required",
            file=sys.stderr,
        )
        return 3
    finally:
        network = backend.network_summary()
        backend.close()
    # One greppable line for the CI wire-smoke job.
    print(
        "wire: "
        f"dispatched={network.get('dispatched', 0)} "
        f"completed={network.get('completed', 0)} "
        f"disconnects={network.get('disconnects', 0)} "
        f"heartbeat_losses={network.get('heartbeat_losses', 0)} "
        f"reconnects={network.get('reconnects', 0)} "
        f"replays={network.get('replays', 0)} "
        f"decode_failures={network.get('decode_failures', 0)} "
        f"stale_updates={network.get('stale_updates', 0)} "
        f"bytes_sent={network.get('bytes_sent', 0)} "
        f"bytes_received={network.get('bytes_received', 0)}"
    )
    title = f"ROC AUC over the wire with {args.model} ({args.preset} preset)"
    text = format_rows(result.rows, title=title)
    text += "\n\nFault tolerance (wire runtime):\n"
    text += resilience_text(result)
    print(text)
    if args.state_digest:
        _print_state_digests(result.outcomes)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\nwritten to {args.output}")
    return 0


def _add_join(subparsers) -> None:
    parser = subparsers.add_parser(
        "join",
        help="join a federation as one or more clients: connect to a repro-serve "
        "process, train dispatched tasks, and resume over reconnects",
    )
    parser.add_argument("--model", choices=available_models(), default="flnet")
    parser.add_argument("--preset", choices=("paper", "default", "smoke"), default="smoke")
    parser.add_argument("--cache-dir", default=None, help="directory to cache the synthesized corpus")
    parser.add_argument(
        "--compute-dtype",
        choices=("float64", "float32"),
        default=None,
        help="local-training arithmetic dtype (must match the server's)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="server address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=7733, help="server port (default 7733)")
    parser.add_argument(
        "--clients",
        type=int,
        nargs="*",
        default=None,
        help="client ids this process hosts (default: every client of the preset)",
    )
    parser.add_argument(
        "--reconnect-delay",
        type=float,
        default=0.5,
        help="seconds between reconnect attempts (default 0.5)",
    )
    parser.add_argument(
        "--max-reconnects",
        type=int,
        default=60,
        help="consecutive reconnect attempts before giving up (default 60)",
    )
    parser.add_argument(
        "--drop-after",
        type=int,
        default=None,
        help="testing: close the connection once, upon receiving the N-th task "
        "(a seeded network blip; the run heals via journal replay)",
    )
    parser.add_argument(
        "--kill-after",
        type=int,
        default=None,
        help="testing: SIGKILL this process after sending the N-th update "
        "(no goodbye, no cleanup — a real host death)",
    )
    parser.set_defaults(handler=_cmd_join)


def _cmd_join(args) -> int:
    from repro.experiments import ExperimentRunner, preset
    from repro.fl.net import HandshakeError, SessionLost, run_client

    config = preset(args.preset, model=args.model)
    try:
        if args.compute_dtype is not None:
            config = config.with_execution(compute_dtype=args.compute_dtype)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    runner = ExperimentRunner(config, cache_dir=args.cache_dir)
    clients = runner.federated_clients()
    if args.clients:
        available = {client.client_id for client in clients}
        unknown = sorted(set(args.clients) - available)
        if unknown:
            print(
                f"error: unknown client ids {unknown}; preset has {sorted(available)}",
                file=sys.stderr,
            )
            return 2
        clients = [client for client in clients if client.client_id in set(args.clients)]
    print(
        f"joining {args.host}:{args.port} as clients "
        f"{[client.client_id for client in clients]}",
        flush=True,
    )
    try:
        report = run_client(
            clients,
            args.host,
            args.port,
            fingerprint=runner.wire_fingerprint(),
            reconnect_delay=args.reconnect_delay,
            max_reconnects=args.max_reconnects,
            drop_after=args.drop_after,
            kill_after=args.kill_after,
        )
    except HandshakeError as error:
        print(f"error: handshake rejected ({error.code}): {error.detail}", file=sys.stderr)
        return 2
    except (SessionLost, OSError) as error:
        print(f"error: session lost: {error}", file=sys.stderr)
        return 1
    print(
        "join: "
        f"tasks_run={report.tasks_run} "
        f"updates_sent={report.updates_sent} "
        f"cache_hits={report.cache_hits} "
        f"reconnects={report.reconnects} "
        f"replays_received={report.replays_received} "
        f"acks={report.acks} "
        f"heartbeats_answered={report.heartbeats_answered} "
        f"drops_simulated={report.drops_simulated}"
    )
    return 0


def _add_bench(subparsers) -> None:
    parser = subparsers.add_parser(
        "bench", help="benchmark record tooling (perf-regression gate)"
    )
    bench_subparsers = parser.add_subparsers(dest="bench_command", required=True)
    diff = bench_subparsers.add_parser(
        "diff",
        help="diff fresh benchmarks/results/*.json against committed baselines; "
        "exits nonzero on a regression beyond tolerance",
    )
    diff.add_argument(
        "--results",
        default="benchmarks/results",
        help="directory of fresh benchmark records (default: benchmarks/results)",
    )
    diff.add_argument(
        "--baselines",
        default="benchmarks/baselines",
        help="directory of committed baseline records (default: benchmarks/baselines)",
    )
    diff.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="relative slowdown tolerated before a record counts as a "
        "regression (default 0.25, i.e. 25%% slower fails)",
    )
    diff.add_argument(
        "--names",
        nargs="*",
        default=None,
        help="compare only these benchmark names (default: every committed baseline)",
    )
    diff.set_defaults(handler=_cmd_bench_diff)


def _cmd_bench_diff(args) -> int:
    from repro.utils.benchgate import (
        DEFAULT_TOLERANCE,
        diff_directories,
        format_table,
        has_regression,
    )

    tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    try:
        rows, warnings = diff_directories(
            args.baselines, args.results, tolerance=tolerance, names=args.names
        )
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    print(f"benchmark gate: tolerance {tolerance:.0%}")
    print(format_table(rows))
    if has_regression(rows):
        print("\nFAIL: at least one benchmark regressed beyond tolerance", file=sys.stderr)
        return 1
    print("\nOK: no regression beyond tolerance")
    return 0


def _add_communication(subparsers) -> None:
    parser = subparsers.add_parser(
        "communication", help="analytic communication cost of every algorithm"
    )
    parser.add_argument("--model", choices=available_models(), default="flnet")
    parser.add_argument("--channels", type=int, default=6)
    parser.add_argument("--clients", type=int, default=9)
    parser.add_argument("--rounds", type=int, default=50)
    parser.set_defaults(handler=_cmd_communication)


def _cmd_communication(args) -> int:
    model = create_model(args.model, in_channels=args.channels, seed=0)
    state = model.state_dict()
    print(
        f"Communication cost of {args.model} ({args.clients} clients, {args.rounds} rounds)\n"
        f"{'Algorithm':<22} {'Uplink/round':>14} {'Downlink/round':>16} {'Total (MB)':>12}"
    )
    for name in sorted(ALGORITHMS):
        if name == "dp_fedprox":
            report = estimate_communication("fedprox", state, args.clients, args.rounds)
            report = type(report)(
                algorithm=name,
                rounds=report.rounds,
                num_clients=report.num_clients,
                uplink_bytes_per_round=report.uplink_bytes_per_round,
                downlink_bytes_per_round=report.downlink_bytes_per_round,
            )
        else:
            report = estimate_communication(name, state, args.clients, args.rounds)
        total_mb = report.total_bytes / 1e6
        print(
            f"{name:<22} {report.uplink_bytes_per_round:>14,d} "
            f"{report.downlink_bytes_per_round:>16,d} {total_mb:>12.2f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Federated routability estimation (DAC 2022 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_list_models(subparsers)
    _add_list_algorithms(subparsers)
    _add_generate_data(subparsers)
    _add_route(subparsers)
    _add_reproduce(subparsers)
    _add_serve(subparsers)
    _add_join(subparsers)
    _add_bench(subparsers)
    _add_communication(subparsers)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    # Surface the library's informational logs (e.g. "resuming from
    # checkpoint round N") on stderr when running from the command line.
    logging.basicConfig(level=logging.INFO, format="%(name)s: %(message)s")
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return int(args.handler(args))


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
