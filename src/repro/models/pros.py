"""PROS-style routability estimator (baseline).

PROS (Chen et al., ICCAD 2020) predicts routing congestion with a deeper
fully convolutional network built from strided downsampling, dilated
convolution blocks for a large receptive field, refinement blocks, and
sub-pixel (pixel-shuffle) upsampling, all with batch normalization.  The
paper uses it as the second baseline and observes that its higher complexity
makes it the most vulnerable model under decentralized training.

The implementation below keeps all of those structural elements at a width
appropriate for the reproduction's grid sizes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.base import RoutabilityModel
from repro.nn.layers import BatchNorm2d, Conv2d, PixelShuffle, ReLU
from repro.nn.module import Sequential
from repro.utils.rng import new_rng


class PROS(RoutabilityModel):
    """Dilated-convolution FCN with sub-pixel upsampling and refinement blocks."""

    def __init__(
        self,
        in_channels: int,
        base_filters: int = 32,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ):
        super().__init__(in_channels)
        if base_filters <= 0:
            raise ValueError(f"base_filters must be positive, got {base_filters}")
        rng = rng if rng is not None else new_rng(seed)
        f = int(base_filters)
        self.base_filters = f

        # Encoder: stem at full resolution, then a strided downsampling stage.
        self.body = Sequential(
            Conv2d(in_channels, f, 3, padding=1, rng=rng),
            BatchNorm2d(f),
            ReLU(),
            Conv2d(f, 2 * f, 3, stride=2, padding=1, rng=rng),
            BatchNorm2d(2 * f),
            ReLU(),
            # Dilated convolution block: growing dilation keeps resolution
            # while expanding the receptive field (Yu & Koltun, 2015).
            Conv2d(2 * f, 2 * f, 3, padding=2, dilation=2, rng=rng),
            BatchNorm2d(2 * f),
            ReLU(),
            Conv2d(2 * f, 2 * f, 3, padding=4, dilation=4, rng=rng),
            BatchNorm2d(2 * f),
            ReLU(),
            # Refinement block at reduced resolution.
            Conv2d(2 * f, 2 * f, 3, padding=1, rng=rng),
            BatchNorm2d(2 * f),
            ReLU(),
            # Sub-pixel upsampling back to full resolution.
            Conv2d(2 * f, 4 * f, 3, padding=1, rng=rng),
            PixelShuffle(2),
            ReLU(),
            # Refinement block at full resolution.
            Conv2d(f, f // 2, 3, padding=1, rng=rng),
            BatchNorm2d(f // 2),
            ReLU(),
        )
        self.output_conv = Conv2d(f // 2, 1, 3, padding=1, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        if x.shape[2] % 2 or x.shape[3] % 2:
            raise ValueError(
                f"PROS requires even spatial dimensions (stride-2 encoder), got {x.shape[2:]}"
            )
        return self.output_conv(self.body(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.output_conv.backward(grad_output)
        return self.body.backward(grad)
