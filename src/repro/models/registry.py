"""Model registry: build any of the three estimators from a configuration string."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.models.base import RoutabilityModel
from repro.models.flnet import FLNet
from repro.models.pros import PROS
from repro.models.routenet import RouteNet, RouteNetGN

ModelFactory = Callable[..., RoutabilityModel]

_REGISTRY: Dict[str, ModelFactory] = {
    "flnet": FLNet,
    "routenet": RouteNet,
    "routenet_gn": RouteNetGN,
    "pros": PROS,
}


def available_models() -> List[str]:
    """Names of the registered routability estimators."""
    return sorted(_REGISTRY)


def register_model(name: str, factory: ModelFactory, overwrite: bool = False) -> None:
    """Register a custom estimator so experiment configs can refer to it by name."""
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"model {name!r} is already registered")
    _REGISTRY[key] = factory


def create_model(
    name: str,
    in_channels: int,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    **kwargs,
) -> RoutabilityModel:
    """Instantiate a registered model by name.

    Parameters
    ----------
    name:
        One of :func:`available_models` (case-insensitive).
    in_channels:
        Number of input feature channels.
    seed / rng:
        Weight-initialization randomness (mutually exclusive; ``rng`` wins).
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise ValueError(f"unknown model {name!r}; available: {available_models()}")
    factory = _REGISTRY[key]
    if rng is not None:
        return factory(in_channels, rng=rng, **kwargs)
    return factory(in_channels, seed=seed, **kwargs)
