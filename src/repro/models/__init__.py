"""Routability estimators: FLNet (ours) plus the RouteNet and PROS baselines."""

from repro.models.base import RoutabilityModel
from repro.models.flnet import FLNet
from repro.models.pros import PROS
from repro.models.registry import available_models, create_model, register_model
from repro.models.routenet import RouteNet, RouteNetGN

__all__ = [
    "RoutabilityModel",
    "FLNet",
    "RouteNet",
    "RouteNetGN",
    "PROS",
    "create_model",
    "available_models",
    "register_model",
]
