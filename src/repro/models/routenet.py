"""RouteNet-style routability estimator (baseline).

RouteNet (Xie et al., ICCAD 2018) is a fully convolutional network for DRC
hotspot prediction built from plain convolutions, a pooled encoder, a
transposed-convolution decoder, and a shortcut connection from the
full-resolution encoder features to the decoder.  The paper uses it as the
representative "traditional" estimator: strong when trained centrally or
locally, but — because of its depth, its batch-normalization layers, and its
higher non-linearity — fragile under federated parameter aggregation.

The exact filter counts below are scaled to the reproduction's grid sizes but
keep RouteNet's structure: stem -> encoder -> pool -> middle -> transposed
conv -> (+ shortcut) -> decoder -> output.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.base import RoutabilityModel
from repro.nn.layers import BatchNorm2d, Conv2d, ConvTranspose2d, GroupNorm, MaxPool2d, ReLU
from repro.nn.module import Identity, Sequential
from repro.utils.rng import new_rng

#: Normalization choices for :class:`RouteNet` (`"batch"` is the original).
NORM_CHOICES = ("batch", "group", "none")


class RouteNet(RoutabilityModel):
    """Encoder/decoder FCN with a shortcut connection and batch normalization.

    ``norm`` selects the normalization used between convolutions: ``"batch"``
    is the original architecture, ``"group"`` swaps every BatchNorm for a
    GroupNorm (no running statistics, so nothing for federated aggregation to
    corrupt), and ``"none"`` removes normalization entirely.  The variants
    exist for the normalization ablation — the paper blames BatchNorm's
    aggregated running statistics for RouteNet's degradation under
    decentralized training, and the ``"group"`` variant tests exactly that
    attribution.
    """

    def __init__(
        self,
        in_channels: int,
        base_filters: int = 32,
        norm: str = "batch",
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ):
        super().__init__(in_channels)
        if base_filters <= 0:
            raise ValueError(f"base_filters must be positive, got {base_filters}")
        if norm not in NORM_CHOICES:
            raise ValueError(f"norm must be one of {NORM_CHOICES}, got {norm!r}")
        rng = rng if rng is not None else new_rng(seed)
        f = int(base_filters)
        self.base_filters = f
        self.norm = norm

        def make_norm(channels: int):
            if norm == "batch":
                return BatchNorm2d(channels)
            if norm == "group":
                return GroupNorm(num_groups=min(4, channels), num_channels=channels)
            return Identity()

        self.stem = Sequential(
            Conv2d(in_channels, f, 9, padding=4, rng=rng),
            ReLU(),
        )
        self.encoder = Sequential(
            Conv2d(f, 2 * f, 7, padding=3, rng=rng),
            make_norm(2 * f),
            ReLU(),
        )
        self.pool = MaxPool2d(2)
        self.middle = Sequential(
            Conv2d(2 * f, f, 9, padding=4, rng=rng),
            make_norm(f),
            ReLU(),
            Conv2d(f, f, 7, padding=3, rng=rng),
            make_norm(f),
            ReLU(),
        )
        self.upsample = Sequential(
            ConvTranspose2d(f, f, 4, stride=2, padding=1, rng=rng),
            ReLU(),
        )
        self.shortcut = Conv2d(2 * f, f, 1, rng=rng)
        self.decoder = Sequential(
            Conv2d(f, f // 2, 5, padding=2, rng=rng),
            make_norm(f // 2),
            ReLU(),
        )
        self.output_conv = Conv2d(f // 2, 1, 3, padding=1, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        if x.shape[2] % 2 or x.shape[3] % 2:
            raise ValueError(
                f"RouteNet requires even spatial dimensions (pool/upsample by 2), got {x.shape[2:]}"
            )
        stem_out = self.stem(x)
        encoded = self.encoder(stem_out)
        pooled = self.pool(encoded)
        middle_out = self.middle(pooled)
        upsampled = self.upsample(middle_out)
        skip = self.shortcut(encoded)
        decoded = self.decoder(upsampled + skip)
        return self.output_conv(decoded)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.output_conv.backward(grad_output)
        grad = self.decoder.backward(grad)
        # The decoder input was (upsampled + skip): the gradient flows into
        # both branches unchanged.
        grad_up = self.upsample.backward(grad)
        grad_skip = self.shortcut.backward(grad)
        grad_mid = self.middle.backward(grad_up)
        grad_encoded = self.pool.backward(grad_mid) + grad_skip
        grad_stem = self.encoder.backward(grad_encoded)
        return self.stem.backward(grad_stem)


def RouteNetGN(
    in_channels: int,
    base_filters: int = 32,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> RouteNet:
    """RouteNet with GroupNorm instead of BatchNorm (the normalization ablation)."""
    return RouteNet(in_channels, base_filters=base_filters, norm="group", rng=rng, seed=seed)
