"""Common interface of the routability estimators."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.module import Module


class RoutabilityModel(Module):
    """Base class of FLNet / RouteNet / PROS.

    A routability estimator maps a feature tensor ``(N, C, H, W)`` to a raw
    hotspot score map ``(N, 1, H, W)``.  Scores are uncalibrated; ROC AUC (the
    paper's metric) only depends on their ranking.

    Subclasses must expose the final layer as an attribute named
    ``output_conv`` — that layer is what FedProx-LG keeps local to each client
    (the paper sets "the output layers of the three models to be the local
    part").
    """

    def __init__(self, in_channels: int):
        super().__init__()
        if in_channels <= 0:
            raise ValueError(f"in_channels must be positive, got {in_channels}")
        self.in_channels = int(in_channels)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Run inference in evaluation mode and return ``(N, 1, H, W)`` scores.

        Scores come out in the model's compute dtype (float32 under the
        fast path); ROC AUC only depends on their ranking either way.
        """
        was_training = self.training
        self.eval()
        try:
            output = self.forward(np.asarray(features, dtype=self.compute_dtype))
        finally:
            self.train(was_training)
        return output

    def local_parameter_names(self) -> List[str]:
        """Parameter names of the output layer (the FedProx-LG local part)."""
        names = [name for name, _ in self.named_parameters() if name.startswith("output_conv")]
        if not names:
            raise RuntimeError(
                f"{self.__class__.__name__} does not expose an 'output_conv' layer; "
                "FedProx-LG partitioning is undefined"
            )
        return names

    def global_parameter_names(self) -> List[str]:
        """Parameter names shared with the developer under FedProx-LG."""
        local = set(self.local_parameter_names())
        return [name for name, _ in self.named_parameters() if name not in local]

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.compute_dtype)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"{self.__class__.__name__} expected input of shape "
                f"(N, {self.in_channels}, H, W), got {x.shape}"
            )
        return x
