"""FLNet: the paper's federated-learning-friendly routability estimator.

Table 1 of the paper specifies the full architecture:

======================  ===========  ========  ==========
Layer                   Kernel size  #Filters  Activation
======================  ===========  ========  ==========
``input_conv``          9 x 9        64        ReLU
``output_conv``         9 x 9        1         None
======================  ===========  ========  ==========

The design rationale (Section 4.2): a 2-layer CNN without batch
normalization has few parameters and low non-linearity, which makes it robust
to the parameter fluctuation introduced by federated aggregation under
client-level data heterogeneity, while the large 9x9 kernels keep the output
receptive field large enough for routability patterns.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.base import RoutabilityModel
from repro.nn.layers import Conv2d, ReLU
from repro.utils.rng import new_rng


class FLNet(RoutabilityModel):
    """The 2-layer, batch-norm-free CNN of Table 1."""

    #: Kernel size of both convolutions (Table 1).
    KERNEL_SIZE = 9
    #: Number of filters of the hidden layer (Table 1).
    HIDDEN_FILTERS = 64

    def __init__(
        self,
        in_channels: int,
        hidden_filters: Optional[int] = None,
        kernel_size: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ):
        super().__init__(in_channels)
        rng = rng if rng is not None else new_rng(seed)
        filters = int(hidden_filters) if hidden_filters is not None else self.HIDDEN_FILTERS
        kernel = int(kernel_size) if kernel_size is not None else self.KERNEL_SIZE
        if kernel % 2 == 0:
            raise ValueError("kernel_size must be odd to preserve the grid size")
        padding = kernel // 2
        self.input_conv = Conv2d(in_channels, filters, kernel, padding=padding, rng=rng)
        self.relu = ReLU()
        self.output_conv = Conv2d(filters, 1, kernel, padding=padding, rng=rng)
        self.hidden_filters = filters
        self.kernel_size = kernel

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        hidden = self.relu(self.input_conv(x))
        return self.output_conv(hidden)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.output_conv.backward(grad_output)
        grad = self.relu.backward(grad)
        return self.input_conv.backward(grad)

    def architecture_table(self) -> list:
        """The rows of the paper's Table 1 for this instance."""
        return [
            {
                "layer": "input_conv",
                "kernel_size": f"{self.kernel_size} x {self.kernel_size}",
                "filters": self.hidden_filters,
                "activation": "ReLU",
            },
            {
                "layer": "output_conv",
                "kernel_size": f"{self.kernel_size} x {self.kernel_size}",
                "filters": 1,
                "activation": "None",
            },
        ]
