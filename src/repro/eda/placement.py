"""Cluster-aware grid placement.

The placer stands in for Innovus' placement step.  It is not meant to
optimize wirelength aggressively; it is meant to produce *realistic-looking*
placements whose density, pin, and congestion structure depends on the
netlist's cluster structure, the target utilization, the aspect ratio, and a
seed — exactly the knobs the paper sweeps to get multiple placement solutions
per design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.eda.benchmarks import Design
from repro.eda.technology import Technology, nangate45
from repro.utils.rng import new_rng
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class PlacementConfig:
    """Knobs of a single placement run.

    Attributes
    ----------
    grid_width / grid_height:
        Size of the routability analysis grid (the ``w x h`` of the paper's
        feature and label maps).
    utilization:
        Target placement density (cell area / core area).
    aspect_ratio:
        Core width / height ratio.
    cluster_noise:
        Fraction of standard cells scattered uniformly instead of inside
        their cluster region; models placements of differing quality.
    seed:
        Random seed of the placement run.
    """

    grid_width: int = 32
    grid_height: int = 32
    utilization: float = 0.70
    aspect_ratio: float = 1.0
    cluster_noise: float = 0.15
    seed: int = 0

    def __post_init__(self):
        check_positive("grid_width", self.grid_width)
        check_positive("grid_height", self.grid_height)
        check_probability("utilization", self.utilization)
        if self.utilization < 0.05:
            raise ValueError("utilization below 5% produces degenerate placements")
        check_positive("aspect_ratio", self.aspect_ratio)
        check_probability("cluster_noise", self.cluster_noise)


@dataclass
class Placement:
    """A placement solution for one design.

    Cell geometry is stored as parallel NumPy arrays indexed consistently
    with ``cell_names`` so downstream map extraction is vectorized.
    """

    design: Design
    config: PlacementConfig
    technology: Technology
    cell_names: List[str]
    positions_um: np.ndarray  # (n_cells, 2) lower-left corners
    sizes_um: np.ndarray  # (n_cells, 2) widths and heights
    is_macro: np.ndarray  # (n_cells,) bool
    die_width_um: float
    die_height_um: float
    _name_to_index: Dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self):
        if not self._name_to_index:
            self._name_to_index = {name: i for i, name in enumerate(self.cell_names)}

    @property
    def num_cells(self) -> int:
        return len(self.cell_names)

    @property
    def grid_shape(self) -> Tuple[int, int]:
        """(height, width) of the analysis grid."""
        return (self.config.grid_height, self.config.grid_width)

    @property
    def bin_width_um(self) -> float:
        return self.die_width_um / self.config.grid_width

    @property
    def bin_height_um(self) -> float:
        return self.die_height_um / self.config.grid_height

    def cell_index(self, name: str) -> int:
        return self._name_to_index[name]

    def cell_center_um(self, name: str) -> Tuple[float, float]:
        index = self.cell_index(name)
        x, y = self.positions_um[index]
        w, h = self.sizes_um[index]
        return (float(x + w / 2.0), float(y + h / 2.0))

    def centers_um(self) -> np.ndarray:
        """Centers of all cells, shape (n_cells, 2)."""
        return self.positions_um + self.sizes_um / 2.0

    def utilization_achieved(self) -> float:
        """Placed cell area divided by core area."""
        cell_area = float(np.prod(self.sizes_um, axis=1).sum())
        return cell_area / (self.die_width_um * self.die_height_um)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Placement(design={self.design.name!r}, cells={self.num_cells}, "
            f"die={self.die_width_um:.1f}x{self.die_height_um:.1f}um, "
            f"grid={self.config.grid_width}x{self.config.grid_height})"
        )


class Placer:
    """Cluster-aware constructive placer."""

    def __init__(self, technology: Optional[Technology] = None):
        self.technology = technology if technology is not None else nangate45()

    def place(self, design: Design, config: PlacementConfig) -> Placement:
        """Produce a placement of ``design`` under ``config``."""
        rng = new_rng(config.seed)
        tech = self.technology
        netlist = design.netlist

        cell_names = list(netlist.cells)
        cells = [netlist.cells[name] for name in cell_names]
        widths = np.array([c.width_sites * tech.site_width_um for c in cells])
        heights = np.array([c.height_rows * tech.site_height_um for c in cells])
        sizes = np.stack([widths, heights], axis=1)
        is_macro = np.array([c.is_macro for c in cells], dtype=bool)
        clusters = np.array([c.cluster for c in cells], dtype=int)

        total_area = float((widths * heights).sum())
        core_area = total_area / config.utilization
        die_width = float(np.sqrt(core_area * config.aspect_ratio))
        die_height = float(core_area / die_width)

        positions = np.zeros((len(cells), 2), dtype=np.float64)

        macro_indices = np.flatnonzero(is_macro)
        self._place_macros(positions, sizes, macro_indices, die_width, die_height, rng)

        std_indices = np.flatnonzero(~is_macro)
        self._place_standard_cells(
            positions,
            sizes,
            clusters,
            std_indices,
            die_width,
            die_height,
            config.cluster_noise,
            rng,
        )

        # Clip every cell inside the die outline.
        positions[:, 0] = np.clip(positions[:, 0], 0.0, np.maximum(die_width - sizes[:, 0], 0.0))
        positions[:, 1] = np.clip(positions[:, 1], 0.0, np.maximum(die_height - sizes[:, 1], 0.0))

        return Placement(
            design=design,
            config=config,
            technology=tech,
            cell_names=cell_names,
            positions_um=positions,
            sizes_um=sizes,
            is_macro=is_macro,
            die_width_um=die_width,
            die_height_um=die_height,
        )

    @staticmethod
    def _place_macros(
        positions: np.ndarray,
        sizes: np.ndarray,
        macro_indices: np.ndarray,
        die_width: float,
        die_height: float,
        rng: np.random.Generator,
    ) -> None:
        """Place macros near the die periphery (the usual floorplanning style)."""
        if macro_indices.size == 0:
            return
        # Candidate anchors: the four edges, walked in a deterministic order.
        anchors = [(0.05, 0.05), (0.75, 0.05), (0.05, 0.75), (0.75, 0.75), (0.40, 0.05), (0.05, 0.40)]
        for slot, index in enumerate(macro_indices):
            ax, ay = anchors[slot % len(anchors)]
            jitter = rng.uniform(-0.04, 0.04, size=2)
            x = (ax + jitter[0]) * die_width
            y = (ay + jitter[1]) * die_height
            positions[index, 0] = np.clip(x, 0.0, max(die_width - sizes[index, 0], 0.0))
            positions[index, 1] = np.clip(y, 0.0, max(die_height - sizes[index, 1], 0.0))

    @staticmethod
    def _place_standard_cells(
        positions: np.ndarray,
        sizes: np.ndarray,
        clusters: np.ndarray,
        std_indices: np.ndarray,
        die_width: float,
        die_height: float,
        cluster_noise: float,
        rng: np.random.Generator,
    ) -> None:
        """Assign each cluster a rectangular region and scatter its cells inside."""
        if std_indices.size == 0:
            return
        cluster_ids = np.unique(clusters[std_indices])
        cluster_area = {}
        for cid in cluster_ids:
            members = std_indices[clusters[std_indices] == cid]
            cluster_area[int(cid)] = float(np.prod(sizes[members], axis=1).sum())
        total_area = sum(cluster_area.values()) or 1.0

        # Strip layout: walk clusters in shuffled order, filling rows of the die.
        order = list(cluster_ids)
        rng.shuffle(order)
        rows = max(1, int(round(np.sqrt(len(order)))))
        row_height = die_height / rows
        cursor_x = 0.0
        row = 0
        regions = {}
        for cid in order:
            fraction = cluster_area[int(cid)] / total_area
            region_width = max(fraction * die_width * rows, 0.02 * die_width)
            if cursor_x + region_width > die_width * 1.0001:
                row = min(row + 1, rows - 1)
                cursor_x = 0.0
            regions[int(cid)] = (cursor_x, row * row_height, region_width, row_height)
            cursor_x += region_width

        for cid in cluster_ids:
            members = std_indices[clusters[std_indices] == cid]
            rx, ry, rw, rh = regions[int(cid)]
            n = members.size
            scatter = rng.random() < cluster_noise
            for local, index in enumerate(members):
                if scatter and rng.random() < cluster_noise:
                    x = rng.uniform(0.0, die_width)
                    y = rng.uniform(0.0, die_height)
                else:
                    x = rx + rng.beta(2.0, 2.0) * rw
                    y = ry + rng.beta(2.0, 2.0) * rh
                positions[index, 0] = x
                positions[index, 1] = y


def sweep_placements(
    design: Design,
    count: int,
    grid_width: int = 32,
    grid_height: int = 32,
    base_seed: int = 0,
    technology: Optional[Technology] = None,
) -> List[Placement]:
    """Generate ``count`` placement solutions of ``design`` with varied settings.

    Mirrors the paper's data generation, where each design is pushed through
    the flow under multiple logic-synthesis and physical-design settings.
    """
    check_positive("count", count)
    placer = Placer(technology)
    style = design.style
    u_lo, u_hi = style.utilization_range
    rng = new_rng(np.random.SeedSequence([design.seed, base_seed, 0xF10]))
    placements = []
    for index in range(count):
        config = PlacementConfig(
            grid_width=grid_width,
            grid_height=grid_height,
            utilization=float(rng.uniform(u_lo, u_hi)),
            aspect_ratio=float(rng.uniform(0.8, 1.25)),
            cluster_noise=float(rng.uniform(0.05, 0.30)),
            seed=int(rng.integers(0, 2**31 - 1)),
        )
        placements.append(placer.place(design, config))
    return placements
