"""Placement and routing quality metrics.

The paper's data generation sweeps placement settings to obtain solutions of
varying quality; this module quantifies that quality the way a physical
design engineer would: half-perimeter wirelength, estimated Steiner
wirelength, density statistics over the analysis grid, pin statistics, and —
when a :class:`~repro.eda.global_router.RoutingResult` is available — routed
wirelength and overflow.  The reports feed the data-generation example, the
benchmark harness, and the corpus statistics in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.eda import maps as map_ext
from repro.eda.global_router import RoutingResult
from repro.eda.placement import Placement
from repro.eda.steiner import hpwl, rsmt_length_estimate


def net_wirelengths(placement: Placement, steiner: bool = False) -> Dict[str, float]:
    """Per-net wirelength estimate (HPWL by default, RSMT estimate otherwise)."""
    centers = placement.centers_um()
    lengths: Dict[str, float] = {}
    estimator = rsmt_length_estimate if steiner else hpwl
    for net in placement.design.netlist.iter_nets():
        cell_names = net.cell_names()
        if len(cell_names) < 2:
            continue
        points = centers[[placement.cell_index(name) for name in cell_names]]
        lengths[net.name] = float(estimator(points))
    return lengths


def total_hpwl(placement: Placement) -> float:
    """Total half-perimeter wirelength of a placement in microns."""
    return float(sum(net_wirelengths(placement, steiner=False).values()))


def total_steiner_wirelength(placement: Placement) -> float:
    """Total estimated rectilinear Steiner wirelength in microns."""
    return float(sum(net_wirelengths(placement, steiner=True).values()))


@dataclass(frozen=True)
class PlacementQualityReport:
    """Quality summary of one placement solution.

    All densities refer to the analysis grid used for feature extraction, so
    the report is directly comparable with what the routability estimator
    sees.
    """

    design: str
    num_cells: int
    num_nets: int
    num_macros: int
    die_width_um: float
    die_height_um: float
    utilization: float
    total_hpwl_um: float
    total_steiner_um: float
    mean_net_hpwl_um: float
    max_net_hpwl_um: float
    max_cell_density: float
    mean_cell_density: float
    density_std: float
    max_pin_density: float
    mean_pin_density: float
    macro_coverage: float

    def to_dict(self) -> Dict[str, float]:
        """Plain-dictionary view (used for CSV/JSON persistence)."""
        return dict(asdict(self))


def placement_quality(placement: Placement) -> PlacementQualityReport:
    """Compute the :class:`PlacementQualityReport` for one placement."""
    lengths = net_wirelengths(placement, steiner=False)
    steiner_total = total_steiner_wirelength(placement)
    values = np.asarray(list(lengths.values()), dtype=np.float64)
    density = map_ext.cell_density_map(placement)
    pins = map_ext.pin_density_map(placement)
    macro = map_ext.macro_map(placement)
    netlist = placement.design.netlist
    return PlacementQualityReport(
        design=placement.design.name,
        num_cells=netlist.num_cells,
        num_nets=netlist.num_nets,
        num_macros=netlist.num_macros,
        die_width_um=float(placement.die_width_um),
        die_height_um=float(placement.die_height_um),
        utilization=float(placement.utilization_achieved()),
        total_hpwl_um=float(values.sum()) if values.size else 0.0,
        total_steiner_um=float(steiner_total),
        mean_net_hpwl_um=float(values.mean()) if values.size else 0.0,
        max_net_hpwl_um=float(values.max()) if values.size else 0.0,
        max_cell_density=float(density.max()),
        mean_cell_density=float(density.mean()),
        density_std=float(density.std()),
        max_pin_density=float(pins.max()),
        mean_pin_density=float(pins.mean()),
        macro_coverage=float(macro.mean()),
    )


@dataclass(frozen=True)
class RoutingQualityReport:
    """Quality summary of one global-routing solution."""

    design: str
    nets_routed: int
    wirelength_bins: int
    wirelength_um: float
    bends: int
    overflow_total: float
    overflow_edges: int
    max_congestion: float
    mean_congestion: float
    congested_bin_fraction: float
    ripup_iterations: int

    def to_dict(self) -> Dict[str, float]:
        return dict(asdict(self))


def routing_quality(result: RoutingResult, congestion_threshold: float = 0.9) -> RoutingQualityReport:
    """Summarize a :class:`~repro.eda.global_router.RoutingResult`.

    ``congestion_threshold`` defines what counts as a congested bin for the
    ``congested_bin_fraction`` statistic (0.9 means bins at 90%+ of capacity).
    """
    if not 0.0 < congestion_threshold <= 2.0:
        raise ValueError("congestion_threshold must be in (0, 2]")
    maps = result.congestion_maps()
    congestion = maps["congestion"]
    return RoutingQualityReport(
        design=result.placement.design.name,
        nets_routed=len(result.routes),
        wirelength_bins=result.total_wirelength_bins,
        wirelength_um=float(result.total_wirelength_um),
        bends=result.total_bends,
        overflow_total=float(result.total_overflow),
        overflow_edges=result.num_overflow_edges,
        max_congestion=float(congestion.max()) if congestion.size else 0.0,
        mean_congestion=float(congestion.mean()) if congestion.size else 0.0,
        congested_bin_fraction=float((congestion >= congestion_threshold).mean()) if congestion.size else 0.0,
        ripup_iterations=result.iterations,
    )


def compare_placements(placements: List[Placement]) -> List[Tuple[str, PlacementQualityReport]]:
    """Quality reports for a set of placements, sorted by total HPWL (best first)."""
    reports = [(p.design.name, placement_quality(p)) for p in placements]
    return sorted(reports, key=lambda item: item[1].total_hpwl_um)


def quality_table(reports: List[PlacementQualityReport]) -> str:
    """Render placement quality reports as an aligned text table."""
    if not reports:
        return "(no placements)"
    header = f"{'Design':<18} {'Cells':>7} {'Nets':>7} {'Util':>6} {'HPWL (um)':>12} {'MaxDens':>8} {'MaxPins':>8}"
    lines = [header, "-" * len(header)]
    for report in reports:
        lines.append(
            f"{report.design:<18} {report.num_cells:>7d} {report.num_nets:>7d} "
            f"{report.utilization:>6.2f} {report.total_hpwl_um:>12.1f} "
            f"{report.max_cell_density:>8.2f} {report.max_pin_density:>8.1f}"
        )
    return "\n".join(lines)
