"""Net topology estimation: HPWL, rectilinear spanning trees, and Steiner trees.

The global router works on two-pin connections, so every multi-pin net has to
be decomposed into a tree first.  This module provides the standard toolbox
used by placement and global routing:

* half-perimeter wirelength (HPWL), the placer's optimization proxy;
* the rectilinear minimum spanning tree (RMST) built with Prim's algorithm in
  Manhattan distance, whose edges are the two-pin connections handed to the
  router;
* a single-trunk Steiner tree heuristic and an RSMT length estimate that
  corrects HPWL for pin count, used by wirelength reporting.

All functions operate on integer or floating-point point sets of shape
``(n, 2)`` in ``(x, y)`` order; the units (microns or grid bins) are the
caller's choice and are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

#: HPWL-to-RSMT correction factors indexed by pin count, following the
#: commonly used fit to FLUTE results (pin counts above the table saturate).
_RSMT_CORRECTION = {
    1: 1.00,
    2: 1.00,
    3: 1.00,
    4: 1.08,
    5: 1.15,
    6: 1.22,
    7: 1.28,
    8: 1.34,
    9: 1.39,
    10: 1.44,
    15: 1.69,
    20: 1.89,
    30: 2.23,
    40: 2.50,
    50: 2.73,
}


def _as_points(points: Sequence[Sequence[float]]) -> np.ndarray:
    array = np.asarray(points, dtype=np.float64)
    if array.ndim != 2 or array.shape[1] != 2:
        raise ValueError(f"points must have shape (n, 2), got {array.shape}")
    return array


def manhattan_distance(p: Sequence[float], q: Sequence[float]) -> float:
    """Manhattan (L1) distance between two points."""
    return float(abs(p[0] - q[0]) + abs(p[1] - q[1]))


def hpwl(points: Sequence[Sequence[float]]) -> float:
    """Half-perimeter wirelength of a point set (0 for fewer than 2 points)."""
    array = _as_points(points)
    if array.shape[0] < 2:
        return 0.0
    spans = array.max(axis=0) - array.min(axis=0)
    return float(spans.sum())


def rectilinear_mst(points: Sequence[Sequence[float]]) -> Tuple[List[Tuple[int, int]], float]:
    """Rectilinear minimum spanning tree via Prim's algorithm.

    Parameters
    ----------
    points:
        ``(n, 2)`` point coordinates.

    Returns
    -------
    edges, total_length:
        ``edges`` is a list of ``(i, j)`` index pairs into ``points`` forming
        a spanning tree (empty for fewer than two points); ``total_length``
        is the sum of Manhattan edge lengths.
    """
    array = _as_points(points)
    n = array.shape[0]
    if n < 2:
        return [], 0.0

    in_tree = np.zeros(n, dtype=bool)
    in_tree[0] = True
    # best_dist[i] / best_parent[i]: cheapest connection of node i to the tree.
    diff = np.abs(array - array[0])
    best_dist = diff.sum(axis=1)
    best_parent = np.zeros(n, dtype=int)
    best_dist[0] = np.inf

    edges: List[Tuple[int, int]] = []
    total = 0.0
    for _ in range(n - 1):
        candidates = np.where(in_tree, np.inf, best_dist)
        next_node = int(np.argmin(candidates))
        parent = int(best_parent[next_node])
        edges.append((parent, next_node))
        total += float(best_dist[next_node])
        in_tree[next_node] = True
        new_dist = np.abs(array - array[next_node]).sum(axis=1)
        closer = new_dist < best_dist
        best_dist = np.where(closer, new_dist, best_dist)
        best_parent = np.where(closer, next_node, best_parent)
        best_dist[next_node] = np.inf
    return edges, total


def decompose_to_two_pin(points: Sequence[Sequence[float]]) -> List[Tuple[int, int]]:
    """Two-pin connections (RMST edges) covering a multi-pin net.

    This is the decomposition handed to the global router; single-pin and
    empty nets decompose into no connections.
    """
    edges, _ = rectilinear_mst(points)
    return edges


@dataclass(frozen=True)
class SteinerTree:
    """A rectilinear Steiner tree: original pins plus added Steiner points.

    Attributes
    ----------
    pins:
        The input pin coordinates, shape ``(n, 2)``.
    steiner_points:
        Added branching points, shape ``(m, 2)`` (possibly empty).
    edges:
        Index pairs into the concatenation ``[pins; steiner_points]``.
    length:
        Total Manhattan length of all edges.
    """

    pins: np.ndarray
    steiner_points: np.ndarray
    edges: Tuple[Tuple[int, int], ...]
    length: float

    @property
    def all_points(self) -> np.ndarray:
        if self.steiner_points.size == 0:
            return self.pins
        return np.vstack([self.pins, self.steiner_points])


def single_trunk_steiner(points: Sequence[Sequence[float]]) -> SteinerTree:
    """Single-trunk Steiner tree heuristic.

    A horizontal or vertical trunk is placed at the median of the pins'
    off-axis coordinate, and every pin connects to the trunk with a straight
    branch.  The cheaper of the two trunk orientations is returned.  For two
    pins this degenerates to an L-shaped connection; for one pin the tree is
    empty.
    """
    array = _as_points(points)
    n = array.shape[0]
    if n < 2:
        return SteinerTree(pins=array, steiner_points=np.zeros((0, 2)), edges=(), length=0.0)

    def build(trunk_axis: int) -> SteinerTree:
        # trunk_axis == 0: horizontal trunk at median y, branches are vertical.
        off_axis = 1 - trunk_axis
        trunk_coord = float(np.median(array[:, off_axis]))
        lo = float(array[:, trunk_axis].min())
        hi = float(array[:, trunk_axis].max())
        trunk_length = hi - lo
        branch_length = float(np.abs(array[:, off_axis] - trunk_coord).sum())

        steiner: List[Tuple[float, float]] = []
        edges: List[Tuple[int, int]] = []
        for index in range(n):
            drop = [0.0, 0.0]
            drop[trunk_axis] = float(array[index, trunk_axis])
            drop[off_axis] = trunk_coord
            steiner.append((drop[0], drop[1]))
            edges.append((index, n + index))
        # Chain the Steiner points along the trunk in sorted order.
        order = np.argsort(array[:, trunk_axis])
        for left, right in zip(order[:-1], order[1:]):
            edges.append((n + int(left), n + int(right)))
        return SteinerTree(
            pins=array,
            steiner_points=np.asarray(steiner, dtype=np.float64),
            edges=tuple(edges),
            length=trunk_length + branch_length,
        )

    horizontal = build(trunk_axis=0)
    vertical = build(trunk_axis=1)
    return horizontal if horizontal.length <= vertical.length else vertical


def rsmt_length_estimate(points: Sequence[Sequence[float]]) -> float:
    """Estimated rectilinear Steiner minimal tree length.

    HPWL is exact for 2- and 3-pin nets; for larger nets it underestimates the
    Steiner length, so a pin-count-dependent correction factor (interpolated
    from the table used in wirelength-estimation literature) is applied.
    """
    array = _as_points(points)
    n = array.shape[0]
    base = hpwl(array)
    if n <= 3 or base == 0.0:
        return base
    keys = sorted(_RSMT_CORRECTION)
    if n >= keys[-1]:
        factor = _RSMT_CORRECTION[keys[-1]]
    else:
        upper = min(k for k in keys if k >= n)
        lower = max(k for k in keys if k <= n)
        if upper == lower:
            factor = _RSMT_CORRECTION[lower]
        else:
            span = upper - lower
            weight = (n - lower) / span
            factor = (1 - weight) * _RSMT_CORRECTION[lower] + weight * _RSMT_CORRECTION[upper]
    return base * factor


def tree_length(points: Sequence[Sequence[float]], edges: Sequence[Tuple[int, int]]) -> float:
    """Total Manhattan length of a tree given as point indices."""
    array = _as_points(points)
    total = 0.0
    for i, j in edges:
        total += manhattan_distance(array[i], array[j])
    return total
