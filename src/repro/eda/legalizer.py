"""Row-based legalization and placement perturbation.

The constructive placer scatters standard cells inside cluster regions, which
is fine for grid-level routability analysis but leaves cells off the site
rows and occasionally overlapping.  This module provides the two remaining
pieces of a realistic placement stage:

* a **Tetris-style legalizer** that snaps every standard cell onto site rows
  and packs each row left-to-right without overlaps (macros stay fixed and
  their rows are blocked), reporting the displacement it introduced;
* a **perturbation operator** that produces placement variants from an
  existing solution — the knob the data-generation flow uses to mimic the
  different optimization efforts / ECO iterations behind the paper's multiple
  placement solutions per design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.eda.placement import Placement
from repro.utils.rng import new_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class LegalizationReport:
    """What the legalizer did to a placement.

    Attributes
    ----------
    num_moved:
        Number of standard cells whose position changed.
    total_displacement_um / max_displacement_um / mean_displacement_um:
        Manhattan displacement statistics over all standard cells.
    overlap_area_before_um2 / overlap_area_after_um2:
        Total pairwise overlap area among standard cells before and after
        legalization (computed on the analysis grid, so it is an estimate).
    """

    num_moved: int
    total_displacement_um: float
    max_displacement_um: float
    mean_displacement_um: float
    overlap_area_before_um2: float
    overlap_area_after_um2: float


def _overlap_estimate(placement: Placement, positions: np.ndarray) -> float:
    """Exact total pairwise overlap area among standard cells (um^2)."""
    mask = ~placement.is_macro
    indices = np.flatnonzero(mask)
    if indices.size < 2:
        return 0.0
    x0 = positions[indices, 0]
    y0 = positions[indices, 1]
    x1 = x0 + placement.sizes_um[indices, 0]
    y1 = y0 + placement.sizes_um[indices, 1]
    # Pairwise rectangle intersection via broadcasting; the upper triangle
    # counts each unordered pair once.
    inter_w = np.minimum(x1[:, None], x1[None, :]) - np.maximum(x0[:, None], x0[None, :])
    inter_h = np.minimum(y1[:, None], y1[None, :]) - np.maximum(y0[:, None], y0[None, :])
    overlap = np.clip(inter_w, 0.0, None) * np.clip(inter_h, 0.0, None)
    upper = np.triu(overlap, k=1)
    return float(upper.sum())


class Legalizer:
    """Tetris-style row legalizer for standard cells."""

    def __init__(self, row_spacing_um: Optional[float] = None):
        """``row_spacing_um`` defaults to the technology's site (row) height."""
        if row_spacing_um is not None:
            check_positive("row_spacing_um", row_spacing_um)
        self.row_spacing_um = row_spacing_um

    def legalize(self, placement: Placement) -> Tuple[Placement, LegalizationReport]:
        """Legalize ``placement``; returns the legal placement and a report.

        Macros are treated as fixed blockages: standard cells are packed into
        the free intervals of each row around them.
        """
        row_height = (
            self.row_spacing_um
            if self.row_spacing_um is not None
            else placement.technology.site_height_um
        )
        die_w = placement.die_width_um
        die_h = placement.die_height_um
        num_rows = max(int(die_h // row_height), 1)

        positions = placement.positions_um.copy()
        sizes = placement.sizes_um
        std_indices = np.flatnonzero(~placement.is_macro)
        overlap_before = _overlap_estimate(placement, placement.positions_um)

        # Free intervals per row (macros carve out blocked spans).
        intervals = self._row_intervals(placement, num_rows, row_height, die_w)
        # Cursor per (row, interval): next free x position.
        cursors: List[List[float]] = [[start for start, _ in row] for row in intervals]

        # Greedy Tetris: process cells bottom-left to top-right for stability.
        order = std_indices[np.lexsort((positions[std_indices, 0], positions[std_indices, 1]))]
        displacement = np.zeros(placement.num_cells, dtype=np.float64)
        for index in order:
            width = sizes[index, 0]
            target_row = int(np.clip(positions[index, 1] // row_height, 0, num_rows - 1))
            best: Optional[Tuple[float, int, int, float]] = None  # (cost, row, interval, x)
            for row_offset in range(num_rows):
                for direction in (-1, 1) if row_offset else (1,):
                    row = target_row + direction * row_offset
                    if not 0 <= row < num_rows:
                        continue
                    placed = self._try_row(row, index, width, positions, intervals, cursors, row_height)
                    if placed is None:
                        continue
                    cost, interval_index, x = placed
                    if best is None or cost < best[0]:
                        best = (cost, row, interval_index, x)
                # Stop widening the row search once a fit was found close by.
                if best is not None and row_offset >= 2:
                    break
            if best is None:
                # Die is over-full around this cell; leave it where it is.
                continue
            _, row, interval_index, x = best
            new_x = x
            new_y = row * row_height
            displacement[index] = abs(new_x - positions[index, 0]) + abs(new_y - positions[index, 1])
            positions[index] = (new_x, new_y)
            cursors[row][interval_index] = new_x + width

        legal = Placement(
            design=placement.design,
            config=placement.config,
            technology=placement.technology,
            cell_names=list(placement.cell_names),
            positions_um=positions,
            sizes_um=placement.sizes_um.copy(),
            is_macro=placement.is_macro.copy(),
            die_width_um=die_w,
            die_height_um=die_h,
        )
        moved = displacement[std_indices] > 1e-9
        std_disp = displacement[std_indices]
        report = LegalizationReport(
            num_moved=int(moved.sum()),
            total_displacement_um=float(std_disp.sum()),
            max_displacement_um=float(std_disp.max()) if std_disp.size else 0.0,
            mean_displacement_um=float(std_disp.mean()) if std_disp.size else 0.0,
            overlap_area_before_um2=overlap_before,
            overlap_area_after_um2=_overlap_estimate(legal, positions),
        )
        return legal, report

    @staticmethod
    def _row_intervals(
        placement: Placement,
        num_rows: int,
        row_height: float,
        die_width: float,
    ) -> List[List[Tuple[float, float]]]:
        """Free [start, end) x-intervals of every row after macro blockages."""
        blocked: List[List[Tuple[float, float]]] = [[] for _ in range(num_rows)]
        for index in np.flatnonzero(placement.is_macro):
            x, y = placement.positions_um[index]
            w, h = placement.sizes_um[index]
            row_lo = int(np.clip(y // row_height, 0, num_rows - 1))
            row_hi = int(np.clip((y + h - 1e-9) // row_height, 0, num_rows - 1))
            for row in range(row_lo, row_hi + 1):
                blocked[row].append((max(x, 0.0), min(x + w, die_width)))

        intervals: List[List[Tuple[float, float]]] = []
        for row in range(num_rows):
            spans = sorted(blocked[row])
            free: List[Tuple[float, float]] = []
            cursor = 0.0
            for start, end in spans:
                if start > cursor:
                    free.append((cursor, start))
                cursor = max(cursor, end)
            if cursor < die_width:
                free.append((cursor, die_width))
            if not free:
                free.append((0.0, 0.0))
            intervals.append(free)
        return intervals

    @staticmethod
    def _try_row(
        row: int,
        index: int,
        width: float,
        positions: np.ndarray,
        intervals: List[List[Tuple[float, float]]],
        cursors: List[List[float]],
        row_height: float,
    ) -> Optional[Tuple[float, int, float]]:
        """Cheapest legal x in ``row`` for the cell, or ``None`` if it cannot fit."""
        best: Optional[Tuple[float, int, float]] = None
        for interval_index, (start, end) in enumerate(intervals[row]):
            x = max(cursors[row][interval_index], start)
            if x + width > end + 1e-9:
                continue
            cost = abs(x - positions[index, 0]) + abs(row * row_height - positions[index, 1])
            if best is None or cost < best[0]:
                best = (cost, interval_index, x)
        return best


def legalize_placement(placement: Placement, row_spacing_um: Optional[float] = None) -> Tuple[Placement, LegalizationReport]:
    """Convenience wrapper around :class:`Legalizer`."""
    return Legalizer(row_spacing_um).legalize(placement)


def perturb_placement(
    placement: Placement,
    magnitude: float = 0.05,
    fraction: float = 0.3,
    seed: int = 0,
    legalize: bool = False,
) -> Placement:
    """A placement variant obtained by randomly displacing some cells.

    Parameters
    ----------
    magnitude:
        Displacement scale as a fraction of the die dimensions (0.05 moves
        cells by up to ~5% of the die per axis).
    fraction:
        Fraction of standard cells that get displaced.
    seed:
        Randomness of which cells move and by how much.
    legalize:
        When ``True`` the perturbed placement is run through the legalizer
        before being returned.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if magnitude < 0:
        raise ValueError("magnitude must be non-negative")
    rng = new_rng(np.random.SeedSequence([seed, placement.config.seed & 0x7FFFFFFF, 0xBEEF]))
    positions = placement.positions_um.copy()
    std_indices = np.flatnonzero(~placement.is_macro)
    if std_indices.size and fraction > 0 and magnitude > 0:
        count = max(int(round(fraction * std_indices.size)), 1)
        chosen = rng.choice(std_indices, size=count, replace=False)
        deltas = rng.uniform(-1.0, 1.0, size=(count, 2))
        deltas[:, 0] *= magnitude * placement.die_width_um
        deltas[:, 1] *= magnitude * placement.die_height_um
        positions[chosen] += deltas
        positions[:, 0] = np.clip(positions[:, 0], 0.0, np.maximum(placement.die_width_um - placement.sizes_um[:, 0], 0.0))
        positions[:, 1] = np.clip(positions[:, 1], 0.0, np.maximum(placement.die_height_um - placement.sizes_um[:, 1], 0.0))

    variant = Placement(
        design=placement.design,
        config=placement.config,
        technology=placement.technology,
        cell_names=list(placement.cell_names),
        positions_um=positions,
        sizes_um=placement.sizes_um.copy(),
        is_macro=placement.is_macro.copy(),
        die_width_um=placement.die_width_um,
        die_height_um=placement.die_height_um,
    )
    if legalize:
        variant, _ = legalize_placement(variant)
    return variant
