"""Technology abstraction.

The paper's data-generation flow targets the NanGate 45nm open cell library
through Design Compiler and Innovus.  This module provides the small slice of
technology information the reproduction's synthetic flow needs: placement
site geometry, routing layers with per-layer track capacity, and unit
conversion between microns and placement sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class RoutingLayer:
    """A single metal routing layer.

    Attributes
    ----------
    name:
        Layer name (e.g. ``metal2``).
    direction:
        Preferred routing direction, ``"horizontal"`` or ``"vertical"``.
    pitch_um:
        Track pitch in microns; determines how many tracks cross a bin.
    """

    name: str
    direction: str
    pitch_um: float

    def __post_init__(self):
        if self.direction not in ("horizontal", "vertical"):
            raise ValueError(f"direction must be horizontal/vertical, got {self.direction!r}")
        check_positive("pitch_um", self.pitch_um)

    def tracks_in(self, span_um: float) -> float:
        """Number of routing tracks of this layer crossing a span of ``span_um``."""
        return span_um / self.pitch_um


@dataclass(frozen=True)
class Technology:
    """A simplified process technology.

    Attributes
    ----------
    name:
        Technology name.
    site_width_um / site_height_um:
        Standard-cell placement site dimensions (row height equals site height).
    routing_layers:
        Metal stack available to the global router, lowest layer first.
    """

    name: str
    site_width_um: float
    site_height_um: float
    routing_layers: Tuple[RoutingLayer, ...] = field(default_factory=tuple)

    def __post_init__(self):
        check_positive("site_width_um", self.site_width_um)
        check_positive("site_height_um", self.site_height_um)
        if not self.routing_layers:
            raise ValueError("a technology needs at least one routing layer")

    @property
    def horizontal_layers(self) -> List[RoutingLayer]:
        return [layer for layer in self.routing_layers if layer.direction == "horizontal"]

    @property
    def vertical_layers(self) -> List[RoutingLayer]:
        return [layer for layer in self.routing_layers if layer.direction == "vertical"]

    def horizontal_capacity(self, bin_height_um: float) -> float:
        """Total horizontal routing tracks available across a bin of given height."""
        return sum(layer.tracks_in(bin_height_um) for layer in self.horizontal_layers)

    def vertical_capacity(self, bin_width_um: float) -> float:
        """Total vertical routing tracks available across a bin of given width."""
        return sum(layer.tracks_in(bin_width_um) for layer in self.vertical_layers)

    def site_area_um2(self) -> float:
        """Area of a single placement site in square microns."""
        return self.site_width_um * self.site_height_um


def nangate45() -> Technology:
    """A NanGate-45nm-like technology with a six-layer routing stack.

    Pitches follow the open-cell-library order of magnitude; exact values are
    unimportant because the reproduction only uses relative capacities.
    """
    layers = (
        RoutingLayer("metal2", "horizontal", pitch_um=0.19),
        RoutingLayer("metal3", "vertical", pitch_um=0.19),
        RoutingLayer("metal4", "horizontal", pitch_um=0.28),
        RoutingLayer("metal5", "vertical", pitch_um=0.28),
        RoutingLayer("metal6", "horizontal", pitch_um=0.56),
        RoutingLayer("metal7", "vertical", pitch_um=0.56),
    )
    return Technology(
        name="nangate45",
        site_width_um=0.19,
        site_height_um=1.4,
        routing_layers=layers,
    )
