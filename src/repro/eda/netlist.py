"""Netlist data model: cells, pins, nets, and the netlist container.

The model is deliberately small — the synthetic flow only needs connectivity,
cell geometry, and a macro flag — but it is a real netlist: every net refers
to concrete pins on concrete cells, the container validates referential
integrity, and a connectivity graph can be exported to ``networkx`` for
cluster analysis and placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from repro.utils.validation import check_positive


@dataclass
class Cell:
    """A placeable instance (standard cell or macro).

    Attributes
    ----------
    name:
        Unique instance name within the netlist.
    width_sites / height_rows:
        Footprint in placement sites horizontally and in rows vertically.
        Standard cells have ``height_rows == 1``; macros are larger in both
        dimensions.
    is_macro:
        Whether the instance is a macro (placed first, acts as a routing
        blockage for the congestion model).
    is_sequential:
        Whether the instance is a flip-flop/latch; sequential cells anchor
        clusters during netlist generation.
    cluster:
        Logical-cluster index assigned by the generator, used by the placer
        to keep tightly connected cells together.
    """

    name: str
    width_sites: int = 1
    height_rows: int = 1
    is_macro: bool = False
    is_sequential: bool = False
    cluster: int = 0

    def __post_init__(self):
        check_positive("width_sites", self.width_sites)
        check_positive("height_rows", self.height_rows)

    @property
    def area_sites(self) -> int:
        """Footprint area in site units."""
        return self.width_sites * self.height_rows


@dataclass(frozen=True)
class Pin:
    """A pin: a (cell, pin-name) pair with a direction."""

    cell_name: str
    pin_name: str
    direction: str = "input"

    def __post_init__(self):
        if self.direction not in ("input", "output"):
            raise ValueError(f"pin direction must be input/output, got {self.direction!r}")

    @property
    def full_name(self) -> str:
        return f"{self.cell_name}/{self.pin_name}"


@dataclass
class Net:
    """A net connecting one driver pin to one or more sink pins."""

    name: str
    pins: List[Pin] = field(default_factory=list)

    @property
    def driver(self) -> Optional[Pin]:
        for pin in self.pins:
            if pin.direction == "output":
                return pin
        return None

    @property
    def sinks(self) -> List[Pin]:
        return [pin for pin in self.pins if pin.direction == "input"]

    @property
    def degree(self) -> int:
        return len(self.pins)

    def cell_names(self) -> List[str]:
        """Names of the distinct cells touched by this net."""
        seen: List[str] = []
        for pin in self.pins:
            if pin.cell_name not in seen:
                seen.append(pin.cell_name)
        return seen


class Netlist:
    """A container of cells and nets with referential-integrity checks."""

    def __init__(self, name: str):
        self.name = name
        self._cells: Dict[str, Cell] = {}
        self._nets: Dict[str, Net] = {}

    # -- construction --------------------------------------------------------
    def add_cell(self, cell: Cell) -> Cell:
        if cell.name in self._cells:
            raise ValueError(f"duplicate cell name {cell.name!r} in netlist {self.name!r}")
        self._cells[cell.name] = cell
        return cell

    def add_net(self, net: Net) -> Net:
        if net.name in self._nets:
            raise ValueError(f"duplicate net name {net.name!r} in netlist {self.name!r}")
        for pin in net.pins:
            if pin.cell_name not in self._cells:
                raise ValueError(
                    f"net {net.name!r} references unknown cell {pin.cell_name!r}"
                )
        self._nets[net.name] = net
        return net

    # -- access ----------------------------------------------------------------
    @property
    def cells(self) -> Dict[str, Cell]:
        return self._cells

    @property
    def nets(self) -> Dict[str, Net]:
        return self._nets

    def cell(self, name: str) -> Cell:
        return self._cells[name]

    def net(self, name: str) -> Net:
        return self._nets[name]

    def iter_cells(self) -> Iterator[Cell]:
        return iter(self._cells.values())

    def iter_nets(self) -> Iterator[Net]:
        return iter(self._nets.values())

    # -- statistics --------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return len(self._cells)

    @property
    def num_nets(self) -> int:
        return len(self._nets)

    @property
    def num_macros(self) -> int:
        return sum(1 for cell in self._cells.values() if cell.is_macro)

    @property
    def num_pins(self) -> int:
        return sum(net.degree for net in self._nets.values())

    def total_cell_area_sites(self) -> int:
        """Sum of cell footprints in site units."""
        return sum(cell.area_sites for cell in self._cells.values())

    def average_net_degree(self) -> float:
        if not self._nets:
            return 0.0
        return self.num_pins / self.num_nets

    def pin_counts_per_cell(self) -> Dict[str, int]:
        """Number of net pins landing on each cell."""
        counts = {name: 0 for name in self._cells}
        for net in self._nets.values():
            for pin in net.pins:
                counts[pin.cell_name] += 1
        return counts

    def validate(self) -> None:
        """Raise ``ValueError`` if the netlist violates basic structural rules."""
        for net in self._nets.values():
            if net.degree < 2:
                raise ValueError(f"net {net.name!r} has fewer than 2 pins")
            if net.driver is None:
                raise ValueError(f"net {net.name!r} has no driver pin")
        isolated = [name for name, count in self.pin_counts_per_cell().items() if count == 0]
        if len(isolated) > max(2, self.num_cells // 10):
            raise ValueError(
                f"netlist {self.name!r} has {len(isolated)} unconnected cells; "
                "generation likely went wrong"
            )

    # -- graph export ---------------------------------------------------------------
    def connectivity_graph(self) -> nx.Graph:
        """Cell-level connectivity graph (clique model per net, weighted)."""
        graph = nx.Graph()
        graph.add_nodes_from(self._cells)
        for net in self._nets.values():
            members = net.cell_names()
            if len(members) < 2:
                continue
            weight = 2.0 / len(members)
            for index, left in enumerate(members):
                for right in members[index + 1 :]:
                    if graph.has_edge(left, right):
                        graph[left][right]["weight"] += weight
                    else:
                        graph.add_edge(left, right, weight=weight)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Netlist(name={self.name!r}, cells={self.num_cells}, nets={self.num_nets}, "
            f"macros={self.num_macros})"
        )


def merge_statistics(netlists: Iterable[Netlist]) -> Dict[str, float]:
    """Aggregate summary statistics over several netlists (used in reports)."""
    netlists = list(netlists)
    if not netlists:
        return {"designs": 0, "cells": 0, "nets": 0, "macros": 0, "avg_net_degree": 0.0}
    total_pins = sum(n.num_pins for n in netlists)
    total_nets = sum(n.num_nets for n in netlists)
    return {
        "designs": len(netlists),
        "cells": sum(n.num_cells for n in netlists),
        "nets": total_nets,
        "macros": sum(n.num_macros for n in netlists),
        "avg_net_degree": total_pins / total_nets if total_nets else 0.0,
    }
