"""Probabilistic global-routing congestion model.

The congestion model converts the RUDY wire-demand maps into per-direction
congestion ratios by comparing demand against the routing capacity the
technology's metal stack provides over each bin, accounting for capacity lost
to macros (routing blockages) and to pin access.  The result is what a fast
global router's congestion report would look like, which is all the DRC
labeler and the learning problem need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.eda import maps as map_ext
from repro.eda.placement import Placement
from repro.eda.technology import Technology


@dataclass(frozen=True)
class CongestionModelConfig:
    """Tuning constants of the congestion estimator.

    Attributes
    ----------
    demand_scale:
        Converts RUDY density (um of wire per um^2) into track demand.
    macro_blockage_factor:
        Fraction of routing capacity removed where macros sit (most layers
        are blocked over a macro).
    pin_access_cost:
        Tracks consumed per pin in a bin (models local pin-access congestion).
    max_congestion_ratio:
        Upper clamp on the demand/capacity ratio.  Bins fully covered by
        macros have almost no capacity and would otherwise report physically
        meaningless ratios in the tens of thousands; real global routers
        saturate their overflow reports the same way.
    """

    demand_scale: float = 1.0
    macro_blockage_factor: float = 0.85
    pin_access_cost: float = 0.08
    max_congestion_ratio: float = 8.0

    def __post_init__(self):
        if self.demand_scale <= 0:
            raise ValueError("demand_scale must be positive")
        if not 0.0 <= self.macro_blockage_factor <= 1.0:
            raise ValueError("macro_blockage_factor must be in [0, 1]")
        if self.pin_access_cost < 0:
            raise ValueError("pin_access_cost must be non-negative")
        if self.max_congestion_ratio <= 1.0:
            raise ValueError("max_congestion_ratio must be greater than 1")


class CongestionEstimator:
    """Computes congestion-ratio and overflow maps for a placement."""

    def __init__(self, config: Optional[CongestionModelConfig] = None):
        self.config = config if config is not None else CongestionModelConfig()

    def estimate(
        self,
        placement: Placement,
        precomputed_maps: Optional[Dict[str, np.ndarray]] = None,
    ) -> Dict[str, np.ndarray]:
        """Return congestion maps for ``placement``.

        Returns a dict with keys ``congestion_horizontal``,
        ``congestion_vertical``, ``congestion`` (max of the two), and
        ``overflow`` (how far demand exceeds capacity, clipped at zero).
        ``precomputed_maps`` may carry the output of
        :func:`repro.eda.maps.all_maps` to avoid recomputation.
        """
        analysis = precomputed_maps if precomputed_maps is not None else map_ext.all_maps(placement)
        technology: Technology = placement.technology
        cfg = self.config

        bin_w = placement.bin_width_um
        bin_h = placement.bin_height_um
        capacity_h = technology.horizontal_capacity(bin_h)
        capacity_v = technology.vertical_capacity(bin_w)

        macro = analysis["macro"]
        pin_density = analysis["pin_density"]

        available_h = capacity_h * (1.0 - cfg.macro_blockage_factor * macro)
        available_v = capacity_v * (1.0 - cfg.macro_blockage_factor * macro)
        pin_penalty = cfg.pin_access_cost * pin_density
        available_h = np.maximum(available_h - pin_penalty, 1e-6)
        available_v = np.maximum(available_v - pin_penalty, 1e-6)

        # RUDY density (um / um^2) x bin span (um) = wire crossings demanded.
        demand_h = cfg.demand_scale * analysis["rudy_horizontal"] * bin_h
        demand_v = cfg.demand_scale * analysis["rudy_vertical"] * bin_w

        congestion_h = np.minimum(demand_h / available_h, cfg.max_congestion_ratio)
        congestion_v = np.minimum(demand_v / available_v, cfg.max_congestion_ratio)
        congestion = np.maximum(congestion_h, congestion_v)
        overflow = np.maximum(congestion - 1.0, 0.0)

        return {
            "congestion_horizontal": congestion_h,
            "congestion_vertical": congestion_v,
            "congestion": congestion,
            "overflow": overflow,
        }


def estimate_congestion(
    placement: Placement,
    config: Optional[CongestionModelConfig] = None,
    precomputed_maps: Optional[Dict[str, np.ndarray]] = None,
) -> Dict[str, np.ndarray]:
    """Convenience wrapper around :class:`CongestionEstimator`."""
    return CongestionEstimator(config).estimate(placement, precomputed_maps)
