"""Synthetic physical-design substrate.

Replaces the paper's commercial Design Compiler / Innovus / NanGate45 flow
with a synthetic but structurally faithful pipeline:

netlist generation (per benchmark-suite style) -> placement -> grid map
extraction -> global-routing congestion -> DRC hotspot labeling.
"""

from repro.eda.benchmarks import (
    SUITES,
    Design,
    DrcSensitivity,
    SuiteStyle,
    generate_design,
    generate_suite_designs,
    suite_names,
)
from repro.eda.drc import DrcHotspotLabeler, DrcResult, label_hotspots
from repro.eda.global_router import (
    GlobalRouter,
    GlobalRouterConfig,
    NetRoute,
    RoutingGrid,
    RoutingResult,
    route_placement,
)
from repro.eda.io import (
    apply_positions,
    read_bookshelf_pl,
    read_design,
    read_netlist_verilog,
    read_placement_def,
    write_bookshelf_pl,
    write_design,
    write_netlist_verilog,
    write_placement_def,
)
from repro.eda.legalizer import (
    LegalizationReport,
    Legalizer,
    legalize_placement,
    perturb_placement,
)
from repro.eda.maps import (
    all_maps,
    cell_density_map,
    flyline_map,
    macro_map,
    net_bounding_boxes,
    pin_density_map,
    rudy_maps,
)
from repro.eda.netlist import Cell, Net, Netlist, Pin, merge_statistics
from repro.eda.placement import Placement, PlacementConfig, Placer, sweep_placements
from repro.eda.quality import (
    PlacementQualityReport,
    RoutingQualityReport,
    compare_placements,
    net_wirelengths,
    placement_quality,
    quality_table,
    routing_quality,
    total_hpwl,
    total_steiner_wirelength,
)
from repro.eda.routing import CongestionEstimator, CongestionModelConfig, estimate_congestion
from repro.eda.steiner import (
    SteinerTree,
    decompose_to_two_pin,
    hpwl,
    manhattan_distance,
    rectilinear_mst,
    rsmt_length_estimate,
    single_trunk_steiner,
    tree_length,
)
from repro.eda.technology import RoutingLayer, Technology, nangate45

__all__ = [
    "Cell",
    "Pin",
    "Net",
    "Netlist",
    "merge_statistics",
    "Technology",
    "RoutingLayer",
    "nangate45",
    "SuiteStyle",
    "DrcSensitivity",
    "SUITES",
    "Design",
    "generate_design",
    "generate_suite_designs",
    "suite_names",
    "PlacementConfig",
    "Placement",
    "Placer",
    "sweep_placements",
    "cell_density_map",
    "macro_map",
    "pin_density_map",
    "rudy_maps",
    "flyline_map",
    "net_bounding_boxes",
    "all_maps",
    "CongestionModelConfig",
    "CongestionEstimator",
    "estimate_congestion",
    "DrcHotspotLabeler",
    "DrcResult",
    "label_hotspots",
    "GlobalRouterConfig",
    "GlobalRouter",
    "RoutingGrid",
    "NetRoute",
    "RoutingResult",
    "route_placement",
    "hpwl",
    "manhattan_distance",
    "rectilinear_mst",
    "decompose_to_two_pin",
    "single_trunk_steiner",
    "SteinerTree",
    "rsmt_length_estimate",
    "tree_length",
    "net_wirelengths",
    "total_hpwl",
    "total_steiner_wirelength",
    "placement_quality",
    "PlacementQualityReport",
    "routing_quality",
    "RoutingQualityReport",
    "compare_placements",
    "quality_table",
    "write_netlist_verilog",
    "read_netlist_verilog",
    "write_design",
    "read_design",
    "write_placement_def",
    "read_placement_def",
    "write_bookshelf_pl",
    "read_bookshelf_pl",
    "apply_positions",
    "Legalizer",
    "LegalizationReport",
    "legalize_placement",
    "perturb_placement",
]
