"""On-disk interchange formats for netlists and placements.

Real design flows exchange data through LEF/DEF and structural Verilog; the
reproduction mirrors that with three deliberately simple text formats so the
synthetic corpus can be inspected, archived, and re-loaded without pickling
Python objects:

* **Verilog-style netlist** (``.v``): one module per design, gate instances
  with explicit net connections, plus ``// repro:`` pragmas carrying the
  generator attributes (macro flag, cluster, geometry) that structural
  Verilog cannot express.
* **DEF-style placement** (``.def``): DIEAREA, a COMPONENTS section with
  ``PLACED`` locations in database units, and pragmas carrying the placement
  configuration so a :class:`~repro.eda.placement.Placement` can be
  reconstructed bit-exactly.
* **Bookshelf ``.pl``** positions, the minimal format used by academic
  placers, for interoperability with external tools.

All writers/readers round-trip: ``read(write(x)) == x`` up to floating-point
formatting, which the tests pin down.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.eda.benchmarks import Design, SUITES
from repro.eda.netlist import Cell, Net, Netlist, Pin
from repro.eda.placement import Placement, PlacementConfig
from repro.eda.technology import Technology, nangate45

PathLike = Union[str, Path]

#: DEF database units per micron (NanGate45 LEF uses 2000).
DEF_UNITS_PER_MICRON = 2000


# ---------------------------------------------------------------------------
# Verilog-style netlist
# ---------------------------------------------------------------------------
def write_netlist_verilog(netlist: Netlist, path: PathLike, suite: Optional[str] = None, seed: int = 0) -> Path:
    """Write ``netlist`` as a structural-Verilog-style file.

    Cell attributes that Verilog cannot express (macro flag, cluster index,
    footprint) are emitted as ``// repro:cell`` pragmas, and the design-level
    suite/seed as a ``// repro:design`` pragma, so :func:`read_netlist_verilog`
    can reconstruct an identical :class:`~repro.eda.netlist.Netlist`.
    """
    path = Path(path)
    lines: List[str] = []
    lines.append(f"// repro:design name={netlist.name} suite={suite or 'unknown'} seed={seed}")
    lines.append(f"module {netlist.name} ();")
    for cell in netlist.iter_cells():
        lines.append(
            "  // repro:cell "
            f"name={cell.name} width={cell.width_sites} height={cell.height_rows} "
            f"macro={int(cell.is_macro)} seq={int(cell.is_sequential)} cluster={cell.cluster}"
        )
    for net in netlist.iter_nets():
        lines.append(f"  wire {net.name};")
    for net in netlist.iter_nets():
        for pin in net.pins:
            lines.append(
                f"  // repro:pin net={net.name} cell={pin.cell_name} pin={pin.pin_name} dir={pin.direction}"
            )
    lines.append("endmodule")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def read_netlist_verilog(path: PathLike) -> Tuple[Netlist, str, int]:
    """Read a netlist written by :func:`write_netlist_verilog`.

    Returns ``(netlist, suite, seed)``.
    """
    path = Path(path)
    name = path.stem
    suite = "unknown"
    seed = 0
    cells: List[Cell] = []
    pins_by_net: Dict[str, List[Pin]] = {}
    net_order: List[str] = []

    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if line.startswith("// repro:design"):
            attrs = _parse_pragma(line)
            name = attrs.get("name", name)
            suite = attrs.get("suite", suite)
            seed = int(attrs.get("seed", seed))
        elif line.startswith("// repro:cell"):
            attrs = _parse_pragma(line)
            cells.append(
                Cell(
                    name=attrs["name"],
                    width_sites=int(attrs["width"]),
                    height_rows=int(attrs["height"]),
                    is_macro=bool(int(attrs["macro"])),
                    is_sequential=bool(int(attrs["seq"])),
                    cluster=int(attrs["cluster"]),
                )
            )
        elif line.startswith("wire "):
            net_name = line[len("wire ") :].rstrip(";").strip()
            if net_name not in pins_by_net:
                pins_by_net[net_name] = []
                net_order.append(net_name)
        elif line.startswith("// repro:pin"):
            attrs = _parse_pragma(line)
            pins_by_net.setdefault(attrs["net"], []).append(
                Pin(cell_name=attrs["cell"], pin_name=attrs["pin"], direction=attrs["dir"])
            )
            if attrs["net"] not in net_order:
                net_order.append(attrs["net"])
        elif line.startswith("module "):
            name = line[len("module ") :].split()[0].rstrip("();")

    netlist = Netlist(name)
    for cell in cells:
        netlist.add_cell(cell)
    for net_name in net_order:
        netlist.add_net(Net(name=net_name, pins=list(pins_by_net.get(net_name, []))))
    return netlist, suite, seed


def write_design(design: Design, path: PathLike) -> Path:
    """Write a :class:`~repro.eda.benchmarks.Design` (netlist + provenance)."""
    return write_netlist_verilog(design.netlist, path, suite=design.suite, seed=design.seed)


def read_design(path: PathLike) -> Design:
    """Read a design written by :func:`write_design`."""
    netlist, suite, seed = read_netlist_verilog(path)
    if suite not in SUITES:
        raise ValueError(f"design file {path} names unknown suite {suite!r}")
    return Design(name=netlist.name, suite=suite, netlist=netlist, seed=seed)


def _parse_pragma(line: str) -> Dict[str, str]:
    """Parse ``key=value`` tokens out of a ``// repro:`` pragma line."""
    tokens = line.split()
    attrs: Dict[str, str] = {}
    for token in tokens:
        if "=" in token:
            key, _, value = token.partition("=")
            attrs[key] = value
    return attrs


# ---------------------------------------------------------------------------
# DEF-style placement
# ---------------------------------------------------------------------------
def write_placement_def(placement: Placement, path: PathLike) -> Path:
    """Write ``placement`` as a DEF-style file with repro pragmas.

    Coordinates are emitted in DEF database units
    (:data:`DEF_UNITS_PER_MICRON` per micron) the way Innovus would write
    them; the placement configuration (grid, utilization, aspect ratio,
    seed) travels in a pragma so the round-trip is exact.
    """
    path = Path(path)
    config = placement.config
    units = DEF_UNITS_PER_MICRON
    lines = [
        "VERSION 5.8 ;",
        f"DESIGN {placement.design.name} ;",
        f"UNITS DISTANCE MICRONS {units} ;",
        (
            "# repro:placement "
            f"grid_width={config.grid_width} grid_height={config.grid_height} "
            f"utilization={config.utilization!r} aspect_ratio={config.aspect_ratio!r} "
            f"cluster_noise={config.cluster_noise!r} seed={config.seed} "
            f"technology={placement.technology.name}"
        ),
        (
            f"DIEAREA ( 0 0 ) ( {int(round(placement.die_width_um * units))} "
            f"{int(round(placement.die_height_um * units))} ) ;"
        ),
        f"COMPONENTS {placement.num_cells} ;",
    ]
    for index, name in enumerate(placement.cell_names):
        x = int(round(placement.positions_um[index, 0] * units))
        y = int(round(placement.positions_um[index, 1] * units))
        source = "BLOCK" if placement.is_macro[index] else "DIST"
        lines.append(f"  - {name} {source} + PLACED ( {x} {y} ) N ;")
    lines.append("END COMPONENTS")
    lines.append("END DESIGN")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def read_placement_def(
    path: PathLike,
    design: Design,
    technology: Optional[Technology] = None,
) -> Placement:
    """Reconstruct a :class:`~repro.eda.placement.Placement` from a DEF file.

    ``design`` must be the design the DEF was written from (the DEF stores
    positions only; cell geometry comes from the netlist and technology).
    """
    path = Path(path)
    technology = technology if technology is not None else nangate45()
    units = DEF_UNITS_PER_MICRON
    config_attrs: Dict[str, str] = {}
    die_width_um = 0.0
    die_height_um = 0.0
    positions: Dict[str, Tuple[float, float]] = {}
    design_name = design.name

    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if line.startswith("DESIGN "):
            design_name = line.split()[1]
        elif line.startswith("UNITS DISTANCE MICRONS"):
            units = int(line.split()[3])
        elif line.startswith("# repro:placement"):
            config_attrs = _parse_pragma(line)
        elif line.startswith("DIEAREA"):
            tokens = line.replace("(", " ").replace(")", " ").split()
            numbers = [t for t in tokens if _is_int(t)]
            die_width_um = int(numbers[2]) / units
            die_height_um = int(numbers[3]) / units
        elif line.startswith("- "):
            tokens = line.replace("(", " ").replace(")", " ").split()
            name = tokens[1]
            placed = tokens.index("PLACED")
            x = int(tokens[placed + 1]) / units
            y = int(tokens[placed + 2]) / units
            positions[name] = (x, y)

    if design_name != design.name:
        raise ValueError(
            f"DEF file is for design {design_name!r}, not {design.name!r}"
        )
    if not config_attrs:
        raise ValueError(f"{path} is missing the repro placement pragma")
    missing = [name for name in design.netlist.cells if name not in positions]
    if missing:
        raise ValueError(f"DEF file is missing placements for {len(missing)} cells (e.g. {missing[0]!r})")

    config = PlacementConfig(
        grid_width=int(config_attrs["grid_width"]),
        grid_height=int(config_attrs["grid_height"]),
        utilization=float(config_attrs["utilization"]),
        aspect_ratio=float(config_attrs["aspect_ratio"]),
        cluster_noise=float(config_attrs["cluster_noise"]),
        seed=int(config_attrs["seed"]),
    )

    cell_names = list(design.netlist.cells)
    cells = [design.netlist.cells[name] for name in cell_names]
    sizes = np.array(
        [
            (c.width_sites * technology.site_width_um, c.height_rows * technology.site_height_um)
            for c in cells
        ],
        dtype=np.float64,
    )
    coords = np.array([positions[name] for name in cell_names], dtype=np.float64)
    is_macro = np.array([c.is_macro for c in cells], dtype=bool)

    return Placement(
        design=design,
        config=config,
        technology=technology,
        cell_names=cell_names,
        positions_um=coords,
        sizes_um=sizes,
        is_macro=is_macro,
        die_width_um=die_width_um,
        die_height_um=die_height_um,
    )


def _is_int(token: str) -> bool:
    try:
        int(token)
    except ValueError:
        return False
    return True


# ---------------------------------------------------------------------------
# Bookshelf .pl positions
# ---------------------------------------------------------------------------
def write_bookshelf_pl(placement: Placement, path: PathLike) -> Path:
    """Write cell positions in the academic Bookshelf ``.pl`` format."""
    path = Path(path)
    lines = ["UCLA pl 1.0", f"# repro design {placement.design.name}"]
    for index, name in enumerate(placement.cell_names):
        x, y = placement.positions_um[index]
        suffix = " /FIXED" if placement.is_macro[index] else ""
        lines.append(f"{name}\t{x:.4f}\t{y:.4f}\t: N{suffix}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def read_bookshelf_pl(path: PathLike) -> Dict[str, Tuple[float, float]]:
    """Read a Bookshelf ``.pl`` file into a ``{cell: (x, y)}`` dictionary."""
    path = Path(path)
    positions: Dict[str, Tuple[float, float]] = {}
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("UCLA"):
            continue
        tokens = line.split()
        if len(tokens) < 3:
            continue
        positions[tokens[0]] = (float(tokens[1]), float(tokens[2]))
    return positions


def apply_positions(placement: Placement, positions: Dict[str, Tuple[float, float]]) -> Placement:
    """A copy of ``placement`` with cell positions replaced by ``positions``.

    Cells absent from ``positions`` keep their current location; unknown cell
    names raise.
    """
    unknown = [name for name in positions if name not in placement._name_to_index]
    if unknown:
        raise ValueError(f"positions reference unknown cells: {unknown[:3]}")
    coords = placement.positions_um.copy()
    for name, (x, y) in positions.items():
        coords[placement.cell_index(name)] = (x, y)
    return Placement(
        design=placement.design,
        config=placement.config,
        technology=placement.technology,
        cell_names=list(placement.cell_names),
        positions_um=coords,
        sizes_um=placement.sizes_um.copy(),
        is_macro=placement.is_macro.copy(),
        die_width_um=placement.die_width_um,
        die_height_um=placement.die_height_um,
    )
