"""Capacity-aware grid global router with negotiated rip-up and reroute.

The probabilistic congestion model in :mod:`repro.eda.routing` is fast enough
for bulk dataset generation, but it never produces an actual routing
solution.  This module implements the real thing at global-routing
granularity: the die is divided into the same ``w x h`` analysis grid used
everywhere else (gcells), every net is decomposed into two-pin connections
over its pin gcells, and each connection is embedded into the routing-grid
graph under per-edge capacities derived from the technology's metal stack and
the macro blockage map.

Routing proceeds PathFinder-style:

1. an initial pass routes every connection with the cheaper of its two
   L-shaped patterns, falling back to congestion-aware maze routing (Dijkstra
   on the grid graph) when both patterns would overflow;
2. negotiated rip-up and reroute iterations then rip up every net crossing an
   over-capacity edge, raise those edges' history cost, and reroute the net
   with the maze router until no overflow remains or the iteration budget is
   exhausted.

The result exposes per-edge usage, bin-level congestion/overflow maps that
are drop-in compatible with :func:`repro.eda.routing.estimate_congestion`
(same dictionary keys), wirelength and via statistics, and the per-net
routes, so it can both label DRC hotspots and be inspected on its own.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.eda import maps as map_ext
from repro.eda.placement import Placement
from repro.eda.steiner import decompose_to_two_pin
from repro.eda.technology import Technology
from repro.utils.validation import check_positive

#: A gcell coordinate as (row, col).
GridNode = Tuple[int, int]
#: An undirected grid edge as a pair of gcell coordinates.
GridEdge = Tuple[GridNode, GridNode]


@dataclass(frozen=True)
class GlobalRouterConfig:
    """Tuning knobs of the global router.

    Attributes
    ----------
    macro_blockage_factor:
        Fraction of an edge's routing capacity removed per unit of macro
        coverage of its adjacent bins.
    pin_access_cost:
        Tracks consumed per pin in a bin (removed from adjacent edges).
    overflow_penalty:
        Multiplier applied to an edge's cost once its usage exceeds capacity;
        this is the "present congestion" term of negotiated routing.
    history_increment:
        History-cost increase applied to every over-capacity edge after each
        rip-up iteration (the "history" term of negotiated routing).
    bend_penalty:
        Extra cost per direction change, biasing maze routes towards
        straighter (cheaper to detail-route) shapes.
    max_ripup_iterations:
        Maximum number of negotiated rip-up and reroute passes.
    maze_fallback:
        Whether the initial pass may use maze routing when both L-shapes
        overflow; when ``False`` the cheaper L-shape is always taken.
    """

    macro_blockage_factor: float = 0.85
    pin_access_cost: float = 0.08
    overflow_penalty: float = 4.0
    history_increment: float = 0.5
    bend_penalty: float = 0.15
    max_ripup_iterations: int = 4
    maze_fallback: bool = True

    def __post_init__(self):
        if not 0.0 <= self.macro_blockage_factor <= 1.0:
            raise ValueError("macro_blockage_factor must be in [0, 1]")
        if self.pin_access_cost < 0:
            raise ValueError("pin_access_cost must be non-negative")
        check_positive("overflow_penalty", self.overflow_penalty)
        if self.history_increment < 0:
            raise ValueError("history_increment must be non-negative")
        if self.bend_penalty < 0:
            raise ValueError("bend_penalty must be non-negative")
        if self.max_ripup_iterations < 0:
            raise ValueError("max_ripup_iterations must be non-negative")


class RoutingGrid:
    """The routing-grid graph: per-edge capacity, usage, and history cost.

    Horizontal edges connect ``(r, c)`` to ``(r, c + 1)`` and are stored in
    arrays of shape ``(H, W - 1)``; vertical edges connect ``(r, c)`` to
    ``(r + 1, c)`` and are stored in arrays of shape ``(H - 1, W)``.
    """

    def __init__(
        self,
        placement: Placement,
        config: Optional[GlobalRouterConfig] = None,
        analysis_maps: Optional[Dict[str, np.ndarray]] = None,
    ):
        self.config = config if config is not None else GlobalRouterConfig()
        self.height, self.width = placement.grid_shape
        if self.height < 1 or self.width < 1:
            raise ValueError("routing grid needs at least one bin in each dimension")
        self.placement = placement

        analysis = analysis_maps if analysis_maps is not None else {}
        macro = analysis.get("macro")
        if macro is None:
            macro = map_ext.macro_map(placement)
        pin_density = analysis.get("pin_density")
        if pin_density is None:
            pin_density = map_ext.pin_density_map(placement)

        technology: Technology = placement.technology
        capacity_h = technology.horizontal_capacity(placement.bin_height_um)
        capacity_v = technology.vertical_capacity(placement.bin_width_um)

        blockage = self.config.macro_blockage_factor * macro
        pin_penalty = self.config.pin_access_cost * pin_density
        available_h = np.maximum(capacity_h * (1.0 - blockage) - pin_penalty, 1.0)
        available_v = np.maximum(capacity_v * (1.0 - blockage) - pin_penalty, 1.0)

        # An edge's capacity is limited by the tighter of its two bins.
        self.capacity_h = np.minimum(available_h[:, :-1], available_h[:, 1:])
        self.capacity_v = np.minimum(available_v[:-1, :], available_v[1:, :])
        self.usage_h = np.zeros_like(self.capacity_h)
        self.usage_v = np.zeros_like(self.capacity_v)
        self.history_h = np.zeros_like(self.capacity_h)
        self.history_v = np.zeros_like(self.capacity_v)

    # -- edge bookkeeping -----------------------------------------------------------
    @staticmethod
    def edge_between(a: GridNode, b: GridNode) -> GridEdge:
        """Canonical (sorted) form of the edge between two adjacent gcells."""
        return (a, b) if a <= b else (b, a)

    def _edge_arrays(self, edge: GridEdge) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Tuple[int, int]]:
        (r0, c0), (r1, c1) = edge
        if r0 == r1 and abs(c0 - c1) == 1:
            return self.capacity_h, self.usage_h, self.history_h, (r0, min(c0, c1))
        if c0 == c1 and abs(r0 - r1) == 1:
            return self.capacity_v, self.usage_v, self.history_v, (min(r0, r1), c0)
        raise ValueError(f"{edge} is not an adjacent gcell pair")

    def edge_capacity(self, edge: GridEdge) -> float:
        capacity, _, _, index = self._edge_arrays(edge)
        return float(capacity[index])

    def edge_usage(self, edge: GridEdge) -> float:
        _, usage, _, index = self._edge_arrays(edge)
        return float(usage[index])

    def edge_cost(self, edge: GridEdge, extra_demand: float = 1.0) -> float:
        """Negotiated-congestion cost of pushing ``extra_demand`` through an edge."""
        capacity, usage, history, index = self._edge_arrays(edge)
        over = max(usage[index] + extra_demand - capacity[index], 0.0)
        congestion_factor = 1.0 + self.config.overflow_penalty * over
        return float((1.0 + history[index]) * congestion_factor)

    def add_usage(self, edge: GridEdge, amount: float = 1.0) -> None:
        _, usage, _, index = self._edge_arrays(edge)
        usage[index] += amount

    def remove_usage(self, edge: GridEdge, amount: float = 1.0) -> None:
        _, usage, _, index = self._edge_arrays(edge)
        usage[index] = max(usage[index] - amount, 0.0)

    def bump_history(self) -> int:
        """Raise history cost on every over-capacity edge; returns their count."""
        over_h = self.usage_h > self.capacity_h
        over_v = self.usage_v > self.capacity_v
        self.history_h[over_h] += self.config.history_increment
        self.history_v[over_v] += self.config.history_increment
        return int(over_h.sum() + over_v.sum())

    # -- aggregate views -------------------------------------------------------------
    def overflow_edges(self) -> List[GridEdge]:
        """Every edge whose usage currently exceeds its capacity."""
        edges: List[GridEdge] = []
        rows, cols = np.nonzero(self.usage_h > self.capacity_h)
        for r, c in zip(rows, cols):
            edges.append(((int(r), int(c)), (int(r), int(c) + 1)))
        rows, cols = np.nonzero(self.usage_v > self.capacity_v)
        for r, c in zip(rows, cols):
            edges.append(((int(r), int(c)), (int(r) + 1, int(c))))
        return edges

    def total_overflow(self) -> float:
        """Sum of (usage - capacity) over all over-capacity edges."""
        over_h = np.maximum(self.usage_h - self.capacity_h, 0.0)
        over_v = np.maximum(self.usage_v - self.capacity_v, 0.0)
        return float(over_h.sum() + over_v.sum())

    def bin_utilization(self) -> Dict[str, np.ndarray]:
        """Project edge usage back onto bins as demand / capacity ratios.

        A bin's horizontal demand is the average of its incident horizontal
        edges (analogously for vertical), which matches how global routers
        report per-gcell congestion.
        """
        h_util = _project_edges_to_bins(self.usage_h, self.capacity_h, axis=1)
        v_util = _project_edges_to_bins(self.usage_v, self.capacity_v, axis=0)
        congestion = np.maximum(h_util, v_util)
        return {
            "congestion_horizontal": h_util,
            "congestion_vertical": v_util,
            "congestion": congestion,
            "overflow": np.maximum(congestion - 1.0, 0.0),
        }

    def neighbors(self, node: GridNode) -> List[GridNode]:
        r, c = node
        result: List[GridNode] = []
        if c + 1 < self.width:
            result.append((r, c + 1))
        if c - 1 >= 0:
            result.append((r, c - 1))
        if r + 1 < self.height:
            result.append((r + 1, c))
        if r - 1 >= 0:
            result.append((r - 1, c))
        return result


def _project_edges_to_bins(usage: np.ndarray, capacity: np.ndarray, axis: int) -> np.ndarray:
    """Average edge demand/capacity ratios onto the bins they touch."""
    ratio = usage / np.maximum(capacity, 1e-9)
    if ratio.size == 0:
        # Degenerate single-row / single-column grids have no edges along
        # this axis; report zero utilization for every bin.
        if axis == 1:
            shape = (usage.shape[0], usage.shape[1] + 1)
        else:
            shape = (usage.shape[0] + 1, usage.shape[1])
        return np.zeros(shape, dtype=np.float64)
    if axis == 1:
        height, edge_cols = ratio.shape
        bins = np.zeros((height, edge_cols + 1), dtype=np.float64)
        counts = np.zeros_like(bins)
        bins[:, :-1] += ratio
        counts[:, :-1] += 1.0
        bins[:, 1:] += ratio
        counts[:, 1:] += 1.0
    else:
        edge_rows, width = ratio.shape
        bins = np.zeros((edge_rows + 1, width), dtype=np.float64)
        counts = np.zeros_like(bins)
        bins[:-1, :] += ratio
        counts[:-1, :] += 1.0
        bins[1:, :] += ratio
        counts[1:, :] += 1.0
    return bins / np.maximum(counts, 1.0)


@dataclass
class NetRoute:
    """The routed realization of one net.

    Attributes
    ----------
    net_name:
        Name of the net in the source netlist.
    pin_bins:
        Distinct gcells containing the net's pins.
    segments:
        One gcell path per two-pin connection of the net's decomposition.
    """

    net_name: str
    pin_bins: Tuple[GridNode, ...]
    segments: List[List[GridNode]] = field(default_factory=list)

    def edges(self) -> List[GridEdge]:
        """Every grid edge used by this net (with multiplicity)."""
        result: List[GridEdge] = []
        for path in self.segments:
            for a, b in zip(path[:-1], path[1:]):
                result.append(RoutingGrid.edge_between(a, b))
        return result

    def wirelength_bins(self) -> int:
        """Total routed length in grid-edge units."""
        return sum(max(len(path) - 1, 0) for path in self.segments)

    def bend_count(self) -> int:
        """Number of direction changes over all segments (a via-count proxy)."""
        bends = 0
        for path in self.segments:
            for previous, current, following in zip(path[:-2], path[1:-1], path[2:]):
                first = (current[0] - previous[0], current[1] - previous[1])
                second = (following[0] - current[0], following[1] - current[1])
                if first != second:
                    bends += 1
        return bends


@dataclass
class RoutingResult:
    """Everything the global router produces for one placement."""

    placement: Placement
    grid: RoutingGrid
    routes: Dict[str, NetRoute]
    iterations: int
    initial_overflow: float

    @property
    def total_wirelength_bins(self) -> int:
        return sum(route.wirelength_bins() for route in self.routes.values())

    @property
    def total_wirelength_um(self) -> float:
        bin_span = 0.5 * (self.placement.bin_width_um + self.placement.bin_height_um)
        return self.total_wirelength_bins * bin_span

    @property
    def total_bends(self) -> int:
        return sum(route.bend_count() for route in self.routes.values())

    @property
    def total_overflow(self) -> float:
        return self.grid.total_overflow()

    @property
    def num_overflow_edges(self) -> int:
        return len(self.grid.overflow_edges())

    def congestion_maps(self) -> Dict[str, np.ndarray]:
        """Bin-level congestion maps, key-compatible with the probabilistic model."""
        return self.grid.bin_utilization()

    def summary(self) -> Dict[str, float]:
        """Scalar quality summary used by reports and benchmarks."""
        maps = self.congestion_maps()
        return {
            "nets_routed": float(len(self.routes)),
            "wirelength_bins": float(self.total_wirelength_bins),
            "wirelength_um": float(self.total_wirelength_um),
            "bends": float(self.total_bends),
            "overflow_total": float(self.total_overflow),
            "overflow_edges": float(self.num_overflow_edges),
            "max_congestion": float(maps["congestion"].max()) if maps["congestion"].size else 0.0,
            "ripup_iterations": float(self.iterations),
        }


class GlobalRouter:
    """Pattern + maze global router with negotiated rip-up and reroute."""

    def __init__(self, config: Optional[GlobalRouterConfig] = None):
        self.config = config if config is not None else GlobalRouterConfig()

    # -- public API -----------------------------------------------------------------
    def route(
        self,
        placement: Placement,
        analysis_maps: Optional[Dict[str, np.ndarray]] = None,
        max_nets: Optional[int] = None,
    ) -> RoutingResult:
        """Route every net of ``placement`` on the analysis grid.

        Parameters
        ----------
        placement:
            The placement to route.
        analysis_maps:
            Optional precomputed output of :func:`repro.eda.maps.all_maps`
            (avoids recomputing macro / pin-density maps).
        max_nets:
            Route only the ``max_nets`` largest-HPWL nets (useful to bound
            runtime on huge designs); ``None`` routes everything.
        """
        grid = RoutingGrid(placement, self.config, analysis_maps)
        net_pins = self._net_pin_bins(placement, grid)
        if max_nets is not None and max_nets < len(net_pins):
            net_pins = dict(
                sorted(
                    net_pins.items(),
                    key=lambda item: -self._pin_spread(item[1]),
                )[:max_nets]
            )

        routes: Dict[str, NetRoute] = {}
        for net_name, pin_bins in net_pins.items():
            routes[net_name] = self._route_net(net_name, pin_bins, grid, allow_maze=self.config.maze_fallback)

        initial_overflow = grid.total_overflow()
        iterations = self._negotiate(routes, grid)
        return RoutingResult(
            placement=placement,
            grid=grid,
            routes=routes,
            iterations=iterations,
            initial_overflow=initial_overflow,
        )

    # -- net preparation -------------------------------------------------------------
    @staticmethod
    def _pin_spread(pin_bins: Sequence[GridNode]) -> int:
        rows = [bin_[0] for bin_ in pin_bins]
        cols = [bin_[1] for bin_ in pin_bins]
        return (max(rows) - min(rows)) + (max(cols) - min(cols))

    @staticmethod
    def _net_pin_bins(placement: Placement, grid: RoutingGrid) -> Dict[str, Tuple[GridNode, ...]]:
        """Map every routable net to the distinct gcells containing its pins."""
        centers = placement.centers_um()
        bin_w = placement.bin_width_um
        bin_h = placement.bin_height_um
        result: Dict[str, Tuple[GridNode, ...]] = {}
        for net in placement.design.netlist.iter_nets():
            cell_names = net.cell_names()
            if len(cell_names) < 2:
                continue
            bins: List[GridNode] = []
            seen: Set[GridNode] = set()
            for name in cell_names:
                index = placement.cell_index(name)
                col = int(np.clip(centers[index, 0] // bin_w, 0, grid.width - 1))
                row = int(np.clip(centers[index, 1] // bin_h, 0, grid.height - 1))
                node = (row, col)
                if node not in seen:
                    seen.add(node)
                    bins.append(node)
            if len(bins) >= 2:
                result[net.name] = tuple(bins)
        return result

    # -- single-net routing -----------------------------------------------------------
    def _route_net(
        self,
        net_name: str,
        pin_bins: Tuple[GridNode, ...],
        grid: RoutingGrid,
        allow_maze: bool,
    ) -> NetRoute:
        route = NetRoute(net_name=net_name, pin_bins=pin_bins)
        points = np.asarray([(col, row) for row, col in pin_bins], dtype=np.float64)
        connections = decompose_to_two_pin(points)
        for i, j in connections:
            source = pin_bins[i]
            target = pin_bins[j]
            path = self._route_connection(source, target, grid, allow_maze)
            for a, b in zip(path[:-1], path[1:]):
                grid.add_usage(grid.edge_between(a, b))
            route.segments.append(path)
        return route

    def _route_connection(
        self,
        source: GridNode,
        target: GridNode,
        grid: RoutingGrid,
        allow_maze: bool,
    ) -> List[GridNode]:
        if source == target:
            return [source]
        candidates = self._l_shape_paths(source, target)
        best_path: Optional[List[GridNode]] = None
        best_cost = float("inf")
        best_overflows = True
        for path in candidates:
            cost, overflows = self._path_cost(path, grid)
            if cost < best_cost:
                best_path, best_cost, best_overflows = path, cost, overflows
        if best_path is None:
            # source and target share a row or column: a straight path.
            best_path = self._straight_path(source, target)
            _, best_overflows = self._path_cost(best_path, grid)
        if best_overflows and allow_maze:
            maze_path = self._maze_route(source, target, grid)
            if maze_path is not None:
                maze_cost, _ = self._path_cost(maze_path, grid)
                if maze_cost < best_cost or best_overflows:
                    return maze_path
        return best_path

    @staticmethod
    def _straight_path(source: GridNode, target: GridNode) -> List[GridNode]:
        r0, c0 = source
        r1, c1 = target
        path = [source]
        step_r = int(np.sign(r1 - r0))
        step_c = int(np.sign(c1 - c0))
        r, c = r0, c0
        while r != r1:
            r += step_r
            path.append((r, c))
        while c != c1:
            c += step_c
            path.append((r, c))
        return path

    def _l_shape_paths(self, source: GridNode, target: GridNode) -> List[List[GridNode]]:
        """The two L-shaped candidate paths (may coincide for aligned pins)."""
        r0, c0 = source
        r1, c1 = target
        if r0 == r1 or c0 == c1:
            return [self._straight_path(source, target)]
        corner_a = (r0, c1)
        corner_b = (r1, c0)
        path_a = self._straight_path(source, corner_a)[:-1] + self._straight_path(corner_a, target)
        path_b = self._straight_path(source, corner_b)[:-1] + self._straight_path(corner_b, target)
        return [path_a, path_b]

    def _path_cost(self, path: List[GridNode], grid: RoutingGrid) -> Tuple[float, bool]:
        """Cost of a path under current usage, and whether it adds overflow."""
        cost = 0.0
        overflows = False
        for a, b in zip(path[:-1], path[1:]):
            edge = grid.edge_between(a, b)
            cost += grid.edge_cost(edge)
            if grid.edge_usage(edge) + 1.0 > grid.edge_capacity(edge):
                overflows = True
        bends = 0
        for previous, current, following in zip(path[:-2], path[1:-1], path[2:]):
            first = (current[0] - previous[0], current[1] - previous[1])
            second = (following[0] - current[0], following[1] - current[1])
            if first != second:
                bends += 1
        return cost + self.config.bend_penalty * bends, overflows

    def _maze_route(
        self,
        source: GridNode,
        target: GridNode,
        grid: RoutingGrid,
    ) -> Optional[List[GridNode]]:
        """Dijkstra shortest path under the negotiated-congestion edge cost."""
        distances: Dict[GridNode, float] = {source: 0.0}
        parents: Dict[GridNode, GridNode] = {}
        visited: Set[GridNode] = set()
        heap: List[Tuple[float, GridNode]] = [(0.0, source)]
        while heap:
            dist, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            if node == target:
                break
            for neighbor in grid.neighbors(node):
                if neighbor in visited:
                    continue
                edge = grid.edge_between(node, neighbor)
                candidate = dist + grid.edge_cost(edge)
                if candidate < distances.get(neighbor, float("inf")):
                    distances[neighbor] = candidate
                    parents[neighbor] = node
                    heapq.heappush(heap, (candidate, neighbor))
        if target not in visited:
            return None
        path = [target]
        while path[-1] != source:
            path.append(parents[path[-1]])
        path.reverse()
        return path

    # -- negotiated rip-up and reroute --------------------------------------------------
    def _negotiate(self, routes: Dict[str, NetRoute], grid: RoutingGrid) -> int:
        iterations = 0
        for _ in range(self.config.max_ripup_iterations):
            overflow_edges = set(grid.overflow_edges())
            if not overflow_edges:
                break
            iterations += 1
            grid.bump_history()
            offenders = [
                name
                for name, route in routes.items()
                if any(edge in overflow_edges for edge in route.edges())
            ]
            for name in offenders:
                old_route = routes[name]
                for edge in old_route.edges():
                    grid.remove_usage(edge)
                routes[name] = self._route_net(name, old_route.pin_bins, grid, allow_maze=True)
        return iterations


def route_placement(
    placement: Placement,
    config: Optional[GlobalRouterConfig] = None,
    analysis_maps: Optional[Dict[str, np.ndarray]] = None,
    max_nets: Optional[int] = None,
) -> RoutingResult:
    """Convenience wrapper: route ``placement`` with a fresh :class:`GlobalRouter`."""
    return GlobalRouter(config).route(placement, analysis_maps=analysis_maps, max_nets=max_nets)
