"""Synthetic benchmark-suite netlist generators.

The paper builds its corpus from four public benchmark suites (ISCAS'89,
ITC'99, IWLS'05, ISPD'15) pushed through a commercial logic-synthesis and
place-and-route flow.  Neither the designs' synthesized netlists nor the
commercial flow are available here, so this module generates synthetic
netlists whose *statistics* differ per suite the way the real suites differ:

* ISCAS'89-style designs are small, shallow, and flip-flop heavy;
* ITC'99-style designs are mid-size RT-level blocks with more logic per
  register and slightly higher fanout;
* IWLS'05-style designs (Faraday / OpenCores) are larger IP blocks with
  wider fanout distributions;
* ISPD'15-style designs are the largest, contain macros, and are placed at
  lower utilization with routing blockages.

Those systematic differences are what create the client-level data
heterogeneity that the paper's federated-learning experiments hinge on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.eda.netlist import Cell, Net, Netlist, Pin
from repro.utils.rng import hash_str, new_rng
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class DrcSensitivity:
    """Suite-specific coefficients of the rule-based DRC hotspot model.

    Different suites stress the router differently (e.g. macro-heavy ISPD'15
    designs generate blockage-related violations; dense sequential ISCAS'89
    designs generate pin-access violations).  These coefficients encode that
    bias and are the main source of label heterogeneity across clients.
    """

    congestion_weight: float = 1.0
    density_weight: float = 0.6
    pin_weight: float = 0.5
    interaction_weight: float = 0.8
    macro_weight: float = 0.0
    noise_sigma: float = 0.06
    hotspot_quantile: float = 0.88
    smoothing_sigma: float = 1.0

    def __post_init__(self):
        check_probability("hotspot_quantile", self.hotspot_quantile)
        check_positive("smoothing_sigma", self.smoothing_sigma)


@dataclass(frozen=True)
class SuiteStyle:
    """Parameters controlling the synthetic netlist generator for one suite."""

    name: str
    display_name: str
    cell_count_range: Tuple[int, int]
    avg_fanout: float
    locality: float
    sequential_fraction: float
    wide_cell_fraction: float
    cluster_size: int
    macro_count_range: Tuple[int, int] = (0, 0)
    global_net_count: int = 2
    utilization_range: Tuple[float, float] = (0.6, 0.8)
    drc: DrcSensitivity = field(default_factory=DrcSensitivity)

    def __post_init__(self):
        lo, hi = self.cell_count_range
        check_positive("cell_count_range low", lo)
        if hi < lo:
            raise ValueError("cell_count_range must be (low, high) with high >= low")
        check_positive("avg_fanout", self.avg_fanout)
        check_probability("locality", self.locality)
        check_probability("sequential_fraction", self.sequential_fraction)
        check_probability("wide_cell_fraction", self.wide_cell_fraction)
        check_positive("cluster_size", self.cluster_size)
        u_lo, u_hi = self.utilization_range
        check_probability("utilization low", u_lo)
        check_probability("utilization high", u_hi)


#: Registry of the four benchmark-suite styles used by the paper's 9 clients.
SUITES: Dict[str, SuiteStyle] = {
    "iscas89": SuiteStyle(
        name="iscas89",
        display_name="ISCAS'89",
        cell_count_range=(250, 900),
        avg_fanout=2.4,
        locality=0.82,
        sequential_fraction=0.28,
        wide_cell_fraction=0.10,
        cluster_size=60,
        utilization_range=(0.70, 0.85),
        drc=DrcSensitivity(
            congestion_weight=0.9,
            density_weight=0.9,
            pin_weight=0.8,
            interaction_weight=0.7,
            macro_weight=0.0,
            noise_sigma=0.07,
            hotspot_quantile=0.88,
            smoothing_sigma=0.9,
        ),
    ),
    "itc99": SuiteStyle(
        name="itc99",
        display_name="ITC'99",
        cell_count_range=(600, 2200),
        avg_fanout=2.9,
        locality=0.75,
        sequential_fraction=0.18,
        wide_cell_fraction=0.15,
        cluster_size=90,
        utilization_range=(0.65, 0.80),
        drc=DrcSensitivity(
            congestion_weight=1.1,
            density_weight=0.6,
            pin_weight=0.5,
            interaction_weight=0.9,
            macro_weight=0.0,
            noise_sigma=0.06,
            hotspot_quantile=0.87,
            smoothing_sigma=1.1,
        ),
    ),
    "iwls05": SuiteStyle(
        name="iwls05",
        display_name="IWLS'05",
        cell_count_range=(900, 3200),
        avg_fanout=3.4,
        locality=0.68,
        sequential_fraction=0.15,
        wide_cell_fraction=0.20,
        cluster_size=120,
        utilization_range=(0.60, 0.78),
        drc=DrcSensitivity(
            congestion_weight=1.2,
            density_weight=0.5,
            pin_weight=0.6,
            interaction_weight=1.0,
            macro_weight=0.2,
            noise_sigma=0.06,
            hotspot_quantile=0.86,
            smoothing_sigma=1.3,
        ),
    ),
    "ispd15": SuiteStyle(
        name="ispd15",
        display_name="ISPD'15",
        cell_count_range=(1800, 4500),
        avg_fanout=3.8,
        locality=0.60,
        sequential_fraction=0.12,
        wide_cell_fraction=0.22,
        cluster_size=160,
        macro_count_range=(3, 8),
        global_net_count=4,
        utilization_range=(0.50, 0.70),
        drc=DrcSensitivity(
            congestion_weight=1.0,
            density_weight=0.4,
            pin_weight=0.4,
            interaction_weight=1.1,
            macro_weight=1.0,
            noise_sigma=0.05,
            hotspot_quantile=0.85,
            smoothing_sigma=1.5,
        ),
    ),
}


@dataclass
class Design:
    """A synthesized design: a netlist plus the suite it was drawn from."""

    name: str
    suite: str
    netlist: Netlist
    seed: int

    @property
    def style(self) -> SuiteStyle:
        return SUITES[self.suite]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Design(name={self.name!r}, suite={self.suite!r}, cells={self.netlist.num_cells})"


def _sample_fanout(rng: np.random.Generator, avg_fanout: float, max_fanout: int = 12) -> int:
    """Draw a net sink count from a shifted geometric distribution."""
    mean_extra = max(avg_fanout - 1.0, 0.1)
    p = 1.0 / (1.0 + mean_extra)
    fanout = 1 + rng.geometric(p)
    return int(min(fanout, max_fanout))


def generate_design(
    suite: str,
    name: str,
    seed: int,
    cell_count: Optional[int] = None,
) -> Design:
    """Generate one synthetic design in the style of ``suite``.

    Parameters
    ----------
    suite:
        One of the keys of :data:`SUITES`.
    name:
        Design name (must be unique within a corpus).
    seed:
        Seed controlling every random choice of the generator.
    cell_count:
        Optional explicit cell count; drawn from the suite's range otherwise.
    """
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r}; expected one of {sorted(SUITES)}")
    style = SUITES[suite]
    rng = new_rng(seed)

    lo, hi = style.cell_count_range
    n_cells = int(cell_count) if cell_count is not None else int(rng.integers(lo, hi + 1))
    check_positive("cell_count", n_cells)

    netlist = Netlist(name)
    n_clusters = max(1, n_cells // style.cluster_size)
    # Cluster sizes are intentionally uneven (Dirichlet weights) so designs
    # have both dense hot regions and sparse regions.
    cluster_weights = rng.dirichlet(np.full(n_clusters, 2.0))
    cluster_of_cell = rng.choice(n_clusters, size=n_cells, p=cluster_weights)

    n_macros = 0
    if style.macro_count_range[1] > 0:
        n_macros = int(rng.integers(style.macro_count_range[0], style.macro_count_range[1] + 1))
    macro_indices = set(rng.choice(n_cells, size=n_macros, replace=False).tolist()) if n_macros else set()

    cells: List[Cell] = []
    for index in range(n_cells):
        is_macro = index in macro_indices
        if is_macro:
            width = int(rng.integers(10, 25))
            height = int(rng.integers(4, 9))
            is_sequential = False
        else:
            is_sequential = bool(rng.random() < style.sequential_fraction)
            wide = rng.random() < style.wide_cell_fraction
            width = int(rng.integers(2, 5)) if wide else 1
            height = 1
        cell = Cell(
            name=f"u{index}",
            width_sites=width,
            height_rows=height,
            is_macro=is_macro,
            is_sequential=is_sequential,
            cluster=int(cluster_of_cell[index]),
        )
        cells.append(cell)
        netlist.add_cell(cell)

    cluster_members: Dict[int, List[int]] = {c: [] for c in range(n_clusters)}
    for index, cluster in enumerate(cluster_of_cell):
        cluster_members[int(cluster)].append(index)

    # Ordinary nets: each cell drives one net whose sinks are mostly local.
    net_id = 0
    all_indices = np.arange(n_cells)
    for driver_index in range(n_cells):
        if rng.random() > 0.92:
            continue
        fanout = _sample_fanout(rng, style.avg_fanout)
        driver_cluster = int(cluster_of_cell[driver_index])
        local = cluster_members[driver_cluster]
        sinks: List[int] = []
        for _ in range(fanout):
            if len(local) > 1 and rng.random() < style.locality:
                sink = int(rng.choice(local))
            else:
                sink = int(rng.choice(all_indices))
            if sink != driver_index:
                sinks.append(sink)
        if not sinks:
            continue
        pins = [Pin(cells[driver_index].name, "o", "output")]
        pins.extend(Pin(cells[s].name, f"i{k}", "input") for k, s in enumerate(dict.fromkeys(sinks)))
        netlist.add_net(Net(name=f"n{net_id}", pins=pins))
        net_id += 1

    # Global nets (clock / reset style): span many clusters with high fanout.
    sequential_indices = [i for i, cell in enumerate(cells) if cell.is_sequential]
    for g in range(style.global_net_count):
        if len(sequential_indices) < 4:
            break
        driver_index = int(rng.choice(all_indices))
        n_sinks = min(len(sequential_indices), int(rng.integers(8, 40)))
        sink_indices = rng.choice(sequential_indices, size=n_sinks, replace=False)
        pins = [Pin(cells[driver_index].name, "o", "output")]
        pins.extend(
            Pin(cells[int(s)].name, f"g{k}", "input")
            for k, s in enumerate(sink_indices)
            if int(s) != driver_index
        )
        if len(pins) >= 2:
            netlist.add_net(Net(name=f"gn{g}", pins=pins))

    netlist.validate()
    return Design(name=name, suite=suite, netlist=netlist, seed=int(seed))


def generate_suite_designs(
    suite: str,
    count: int,
    base_seed: int = 0,
    name_prefix: Optional[str] = None,
) -> List[Design]:
    """Generate ``count`` designs of one suite with deterministic, distinct seeds."""
    check_positive("count", count)
    prefix = name_prefix if name_prefix is not None else suite
    designs = []
    for index in range(count):
        seed = int(
            np.random.SeedSequence([base_seed, index, hash_str(suite) % (2**31)]).generate_state(1)[0]
        )
        designs.append(generate_design(suite, f"{prefix}_{index:03d}", seed))
    return designs


def suite_names() -> Sequence[str]:
    """Names of the available benchmark-suite styles."""
    return tuple(SUITES)
