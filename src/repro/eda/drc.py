"""Rule-based DRC hotspot labeling.

This module plays the role of the detailed router plus design-rule checker in
the paper's flow: given a placement it produces the ground-truth binary DRC
hotspot map ``Y in {0, 1}^(w x h)``.

The labeling rule combines the physical quantities that actually drive DRC
violations — routing overflow, local cell density, pin-access pressure, and
macro-boundary effects — through a smooth nonlinear scoring function with a
spatial neighbourhood (violations appear near, not only inside, congested
bins), suite-specific sensitivities (the source of client heterogeneity), and
a small amount of noise (DRC outcomes are not perfectly predictable from
placement-stage features).  The top quantile of the score becomes the hotspot
label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np
from scipy import ndimage

from repro.eda import maps as map_ext
from repro.eda.benchmarks import DrcSensitivity
from repro.eda.placement import Placement
from repro.eda.routing import CongestionModelConfig, estimate_congestion
from repro.utils.rng import new_rng


@dataclass
class DrcResult:
    """Output of the DRC labeler for one placement."""

    score: np.ndarray
    hotspots: np.ndarray
    hotspot_fraction: float
    analysis_maps: Dict[str, np.ndarray]

    @property
    def num_hotspots(self) -> int:
        return int(self.hotspots.sum())


class DrcHotspotLabeler:
    """Generates ground-truth DRC hotspot maps from placements."""

    def __init__(
        self,
        congestion_config: Optional[CongestionModelConfig] = None,
        label_seed: int = 0,
        congestion_source: str = "model",
        router_config: Optional["GlobalRouterConfig"] = None,
    ):
        """Create a labeler.

        ``congestion_source`` selects where congestion maps come from:
        ``"model"`` uses the fast probabilistic estimator (the default used
        for bulk dataset generation), ``"router"`` runs the capacity-aware
        global router of :mod:`repro.eda.global_router` and labels from its
        actual per-bin utilization — slower but produces labels grounded in a
        real routing solution.
        """
        if congestion_source not in ("model", "router"):
            raise ValueError(
                f"congestion_source must be 'model' or 'router', got {congestion_source!r}"
            )
        self.congestion_config = congestion_config if congestion_config is not None else CongestionModelConfig()
        self.label_seed = int(label_seed)
        self.congestion_source = congestion_source
        self.router_config = router_config

    def label(
        self,
        placement: Placement,
        sensitivity: Optional[DrcSensitivity] = None,
        precomputed_maps: Optional[Dict[str, np.ndarray]] = None,
    ) -> DrcResult:
        """Compute the hotspot score and binary label map for ``placement``."""
        style = placement.design.style
        coeffs = sensitivity if sensitivity is not None else style.drc

        analysis = precomputed_maps if precomputed_maps is not None else map_ext.all_maps(placement)
        if self.congestion_source == "router":
            from repro.eda.global_router import route_placement

            routed = route_placement(placement, self.router_config, analysis_maps=analysis)
            congestion = routed.congestion_maps()
        else:
            congestion = estimate_congestion(placement, self.congestion_config, analysis)

        overflow = congestion["overflow"]
        congestion_ratio = congestion["congestion"]
        cell_density = analysis["cell_density"]
        pin_density = analysis["pin_density"]
        macro = analysis["macro"]

        pin_norm = pin_density / (pin_density.mean() + 1e-9)

        # Macro boundary: bins adjacent to (but not inside) macros suffer from
        # blockage-related violations.
        macro_presence = (macro > 0.25).astype(np.float64)
        dilated = ndimage.binary_dilation(macro_presence, iterations=1).astype(np.float64)
        macro_boundary = np.clip(dilated - macro_presence, 0.0, 1.0)

        # Nonlinear combination with interactions; squared terms make dense
        # bins disproportionately risky, and products couple congestion with
        # pin access the way real DRC violations couple them.
        score = (
            coeffs.congestion_weight * np.power(congestion_ratio, 1.5)
            + coeffs.density_weight * np.power(np.clip(cell_density, 0.0, 2.0), 2.0)
            + coeffs.pin_weight * np.tanh(0.5 * pin_norm)
            + coeffs.interaction_weight * congestion_ratio * np.tanh(0.5 * pin_norm)
            + coeffs.macro_weight * macro_boundary * (0.5 + congestion_ratio)
            + 2.0 * overflow
        )

        # Violations spill into neighbouring bins: smooth the score so the
        # label depends on a spatial neighbourhood, rewarding models with a
        # large receptive field (the paper's motivation for FLNet's 9x9 kernels).
        score = ndimage.gaussian_filter(score, sigma=coeffs.smoothing_sigma, mode="nearest")

        rng = new_rng(
            np.random.SeedSequence(
                [self.label_seed, placement.design.seed, placement.config.seed & 0x7FFFFFFF]
            )
        )
        noisy = score + rng.normal(0.0, coeffs.noise_sigma * (score.std() + 1e-9), size=score.shape)

        threshold = np.quantile(noisy, coeffs.hotspot_quantile)
        hotspots = (noisy > threshold).astype(np.float64)
        # Guarantee at least one hotspot and at least one cold bin so ROC AUC
        # is always defined for the placement.
        if hotspots.sum() == 0:
            hotspots.flat[np.argmax(noisy)] = 1.0
        if hotspots.sum() == hotspots.size:
            hotspots.flat[np.argmin(noisy)] = 0.0

        return DrcResult(
            score=score,
            hotspots=hotspots,
            hotspot_fraction=float(hotspots.mean()),
            analysis_maps=analysis,
        )


def label_hotspots(
    placement: Placement,
    sensitivity: Optional[DrcSensitivity] = None,
    label_seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Convenience wrapper returning ``(score, hotspot_map)`` for a placement."""
    result = DrcHotspotLabeler(label_seed=label_seed).label(placement, sensitivity)
    return result.score, result.hotspots
