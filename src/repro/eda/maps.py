"""Grid-map extraction from placements.

All routability analysis in the paper happens on a ``w x h`` grid over the
die.  This module rasterizes a :class:`~repro.eda.placement.Placement` into
the per-bin maps that both the feature extractor and the DRC labeler consume:
cell density, pin density, macro coverage, RUDY (and its horizontal /
vertical split), and net fly-line crossings.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.eda.placement import Placement


def _clip_fraction(value: np.ndarray) -> np.ndarray:
    return np.clip(value, 0.0, 1.0)


def _rect_bin_overlap_multi(
    placement: Placement,
    x0: np.ndarray,
    y0: np.ndarray,
    x1: np.ndarray,
    y1: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Accumulate weighted rectangle coverage onto the analysis grid.

    Each rectangle ``i`` spreads ``weights[i]`` over the bins it overlaps,
    proportionally to the overlap area divided by the rectangle area (so the
    total contribution of a rectangle equals its weight).  ``weights`` may be
    ``(n,)`` for a single output map or ``(n, k)`` to accumulate ``k`` maps in
    one pass (used by RUDY, which needs combined / horizontal / vertical maps
    of the same rectangles).

    Returns ``(k, H, W)`` (``k == 1`` for 1-D weights).
    """
    grid_h, grid_w = placement.grid_shape
    bin_w = placement.bin_width_um
    bin_h = placement.bin_height_um
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim == 1:
        weights = weights[:, None]
    n_maps = weights.shape[1]
    result = np.zeros((n_maps, grid_h, grid_w), dtype=np.float64)

    col_edges = np.arange(grid_w + 1) * bin_w
    row_edges = np.arange(grid_h + 1) * bin_h

    for i in range(x0.size):
        rect_w = max(x1[i] - x0[i], 1e-9)
        rect_h = max(y1[i] - y0[i], 1e-9)
        col_lo = int(np.clip(np.floor(x0[i] / bin_w), 0, grid_w - 1))
        col_hi = int(np.clip(np.floor((x1[i] - 1e-9) / bin_w), 0, grid_w - 1))
        row_lo = int(np.clip(np.floor(y0[i] / bin_h), 0, grid_h - 1))
        row_hi = int(np.clip(np.floor((y1[i] - 1e-9) / bin_h), 0, grid_h - 1))
        cols = np.arange(col_lo, col_hi + 1)
        rows = np.arange(row_lo, row_hi + 1)
        overlap_x = np.minimum(x1[i], col_edges[cols + 1]) - np.maximum(x0[i], col_edges[cols])
        overlap_y = np.minimum(y1[i], row_edges[rows + 1]) - np.maximum(y0[i], row_edges[rows])
        overlap_x = np.clip(overlap_x, 0.0, None)
        overlap_y = np.clip(overlap_y, 0.0, None)
        fractions = np.outer(overlap_y, overlap_x) / (rect_w * rect_h)
        result[:, row_lo : row_hi + 1, col_lo : col_hi + 1] += weights[i][:, None, None] * fractions
    return result


def _rect_bin_overlap(
    placement: Placement,
    x0: np.ndarray,
    y0: np.ndarray,
    x1: np.ndarray,
    y1: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Single-map variant of :func:`_rect_bin_overlap_multi`."""
    return _rect_bin_overlap_multi(placement, x0, y0, x1, y1, weights)[0]


def cell_density_map(placement: Placement, include_macros: bool = False) -> np.ndarray:
    """Standard-cell area per bin, normalized by bin area (0 = empty, 1 = full)."""
    mask = np.ones(placement.num_cells, dtype=bool) if include_macros else ~placement.is_macro
    if not mask.any():
        return np.zeros(placement.grid_shape, dtype=np.float64)
    pos = placement.positions_um[mask]
    size = placement.sizes_um[mask]
    areas = size[:, 0] * size[:, 1]
    density = _rect_bin_overlap(
        placement, pos[:, 0], pos[:, 1], pos[:, 0] + size[:, 0], pos[:, 1] + size[:, 1], areas
    )
    bin_area = placement.bin_width_um * placement.bin_height_um
    return density / bin_area


def macro_map(placement: Placement) -> np.ndarray:
    """Fraction of each bin covered by macros (acts as a routing blockage map)."""
    mask = placement.is_macro
    if not mask.any():
        return np.zeros(placement.grid_shape, dtype=np.float64)
    pos = placement.positions_um[mask]
    size = placement.sizes_um[mask]
    areas = size[:, 0] * size[:, 1]
    coverage = _rect_bin_overlap(
        placement, pos[:, 0], pos[:, 1], pos[:, 0] + size[:, 0], pos[:, 1] + size[:, 1], areas
    )
    bin_area = placement.bin_width_um * placement.bin_height_um
    return _clip_fraction(coverage / bin_area)


def pin_density_map(placement: Placement) -> np.ndarray:
    """Number of net pins per bin (pins are located at their cell's center)."""
    grid_h, grid_w = placement.grid_shape
    counts = np.zeros((grid_h, grid_w), dtype=np.float64)
    pin_counts = placement.design.netlist.pin_counts_per_cell()
    centers = placement.centers_um()
    bin_w = placement.bin_width_um
    bin_h = placement.bin_height_um
    for name, count in pin_counts.items():
        if count == 0:
            continue
        index = placement.cell_index(name)
        col = int(np.clip(centers[index, 0] // bin_w, 0, grid_w - 1))
        row = int(np.clip(centers[index, 1] // bin_h, 0, grid_h - 1))
        counts[row, col] += count
    return counts


def net_bounding_boxes(placement: Placement) -> Tuple[np.ndarray, List[str]]:
    """Bounding boxes (x0, y0, x1, y1) of every net with at least two pins."""
    centers = placement.centers_um()
    boxes = []
    names = []
    for net in placement.design.netlist.iter_nets():
        cell_names = net.cell_names()
        if len(cell_names) < 2:
            continue
        indices = [placement.cell_index(name) for name in cell_names]
        points = centers[indices]
        x0, y0 = points.min(axis=0)
        x1, y1 = points.max(axis=0)
        boxes.append((x0, y0, x1, y1))
        names.append(net.name)
    if not boxes:
        return np.zeros((0, 4), dtype=np.float64), []
    return np.asarray(boxes, dtype=np.float64), names


def rudy_maps(placement: Placement) -> Dict[str, np.ndarray]:
    """RUDY wire-density maps.

    RUDY (Rectangular Uniform wire DensitY) spreads each net's estimated
    wirelength uniformly over its bounding box.  Returns the combined map and
    the horizontal / vertical splits used by the congestion model.
    """
    boxes, _ = net_bounding_boxes(placement)
    grid_h, grid_w = placement.grid_shape
    zero = np.zeros((grid_h, grid_w), dtype=np.float64)
    if boxes.shape[0] == 0:
        return {"rudy": zero, "rudy_horizontal": zero.copy(), "rudy_vertical": zero.copy()}

    x0, y0, x1, y1 = boxes[:, 0], boxes[:, 1], boxes[:, 2], boxes[:, 3]
    # Degenerate (single-bin) boxes are widened to one bin so they still
    # contribute local demand.
    min_w = placement.bin_width_um
    min_h = placement.bin_height_um
    widths = np.maximum(x1 - x0, min_w)
    heights = np.maximum(y1 - y0, min_h)

    # The RUDY demand density of a net over its bounding box is
    # (w + h) / (w * h); the overlap accumulator spreads a total weight of
    # density * area = (w + h) over the box, so passing (w + h) as the weight
    # and dividing by bin area afterwards yields the per-bin demand density.
    weights = np.stack([widths + heights, widths, heights], axis=1)
    combined, horizontal, vertical = _rect_bin_overlap_multi(
        placement, x0, y0, x0 + widths, y0 + heights, weights
    )
    bin_area = placement.bin_width_um * placement.bin_height_um
    return {
        "rudy": combined / bin_area,
        "rudy_horizontal": horizontal / bin_area,
        "rudy_vertical": vertical / bin_area,
    }


def flyline_map(placement: Placement) -> np.ndarray:
    """Number of net bounding boxes covering each bin (fly-line crossing count)."""
    boxes, _ = net_bounding_boxes(placement)
    grid_h, grid_w = placement.grid_shape
    counts = np.zeros((grid_h, grid_w), dtype=np.float64)
    if boxes.shape[0] == 0:
        return counts
    bin_w = placement.bin_width_um
    bin_h = placement.bin_height_um
    for x0, y0, x1, y1 in boxes:
        col_lo = int(np.clip(x0 // bin_w, 0, grid_w - 1))
        col_hi = int(np.clip(x1 // bin_w, 0, grid_w - 1))
        row_lo = int(np.clip(y0 // bin_h, 0, grid_h - 1))
        row_hi = int(np.clip(y1 // bin_h, 0, grid_h - 1))
        counts[row_lo : row_hi + 1, col_lo : col_hi + 1] += 1.0
    return counts


def all_maps(placement: Placement) -> Dict[str, np.ndarray]:
    """Convenience bundle of every analysis map for one placement."""
    maps = {
        "cell_density": cell_density_map(placement),
        "macro": macro_map(placement),
        "pin_density": pin_density_map(placement),
        "flylines": flyline_map(placement),
    }
    maps.update(rudy_maps(placement))
    return maps
