"""Feature extraction for routability estimation.

Following the paper (Section 4.4) and the earlier works it cites (RouteNet,
PROS), the features capture cell density (including routing blockage /
macro information) and wire density (RUDY, fly lines, pin connectivity),
rasterized on the same ``w x h`` grid as the DRC hotspot labels.

The extractor returns channel-first tensors ``(C, H, W)`` ready for the
convolutional models in :mod:`repro.models`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.eda import maps as map_ext
from repro.eda.placement import Placement
from repro.eda.routing import CongestionModelConfig, estimate_congestion
from repro.utils.validation import check_choice

MapBuilder = Callable[[Placement, Dict[str, np.ndarray]], np.ndarray]


def _from_analysis(key: str) -> MapBuilder:
    def build(placement: Placement, analysis: Dict[str, np.ndarray]) -> np.ndarray:
        return analysis[key]

    return build


def _congestion_feature(key: str) -> MapBuilder:
    def build(placement: Placement, analysis: Dict[str, np.ndarray]) -> np.ndarray:
        congestion = estimate_congestion(placement, CongestionModelConfig(), analysis)
        return congestion[key]

    return build


#: All feature maps the extractor knows how to build.
FEATURE_BUILDERS: Dict[str, MapBuilder] = {
    "cell_density": _from_analysis("cell_density"),
    "macro": _from_analysis("macro"),
    "pin_density": _from_analysis("pin_density"),
    "rudy": _from_analysis("rudy"),
    "rudy_horizontal": _from_analysis("rudy_horizontal"),
    "rudy_vertical": _from_analysis("rudy_vertical"),
    "flylines": _from_analysis("flylines"),
    "congestion_horizontal": _congestion_feature("congestion_horizontal"),
    "congestion_vertical": _congestion_feature("congestion_vertical"),
}

#: The default feature stack used throughout the reproduction (7 channels:
#: cell-density features + wire-density features, per Section 4.4).
DEFAULT_FEATURES: Tuple[str, ...] = (
    "cell_density",
    "macro",
    "pin_density",
    "rudy",
    "rudy_horizontal",
    "rudy_vertical",
    "flylines",
)

_NORMALIZATIONS = ("none", "per_sample", "log1p")


def available_features() -> List[str]:
    """Names of all feature maps the extractor can compute."""
    return sorted(FEATURE_BUILDERS)


class FeatureExtractor:
    """Builds stacked feature tensors from placements.

    Parameters
    ----------
    feature_names:
        Ordered channels to extract; defaults to :data:`DEFAULT_FEATURES`.
    normalization:
        ``"per_sample"`` (default) scales each channel by its own maximum so
        every channel lies in [0, 1]; ``"log1p"`` applies ``log(1+x)`` before
        per-sample scaling (useful for heavy-tailed maps such as pin density);
        ``"none"`` returns raw physical values.
    """

    def __init__(
        self,
        feature_names: Optional[Sequence[str]] = None,
        normalization: str = "per_sample",
    ):
        names = tuple(feature_names) if feature_names is not None else DEFAULT_FEATURES
        unknown = [name for name in names if name not in FEATURE_BUILDERS]
        if unknown:
            raise ValueError(f"unknown feature names {unknown}; available: {available_features()}")
        if not names:
            raise ValueError("at least one feature must be requested")
        check_choice("normalization", normalization, _NORMALIZATIONS)
        self.feature_names: Tuple[str, ...] = names
        self.normalization = normalization

    @property
    def num_channels(self) -> int:
        return len(self.feature_names)

    def extract(
        self,
        placement: Placement,
        analysis_maps: Optional[Dict[str, np.ndarray]] = None,
    ) -> np.ndarray:
        """Extract the feature tensor ``(C, H, W)`` for one placement."""
        analysis = analysis_maps if analysis_maps is not None else map_ext.all_maps(placement)
        channels = []
        for name in self.feature_names:
            raw = np.asarray(FEATURE_BUILDERS[name](placement, analysis), dtype=np.float64)
            channels.append(self._normalize(raw))
        return np.stack(channels, axis=0)

    def extract_batch(self, placements: Iterable[Placement]) -> np.ndarray:
        """Extract features for several placements, shape ``(N, C, H, W)``."""
        tensors = [self.extract(placement) for placement in placements]
        if not tensors:
            raise ValueError("extract_batch received no placements")
        return np.stack(tensors, axis=0)

    def _normalize(self, channel: np.ndarray) -> np.ndarray:
        if self.normalization == "none":
            return channel
        values = np.log1p(np.maximum(channel, 0.0)) if self.normalization == "log1p" else channel
        peak = float(np.max(np.abs(values)))
        if peak <= 1e-12:
            return np.zeros_like(values)
        return values / peak

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FeatureExtractor(features={list(self.feature_names)}, "
            f"normalization={self.normalization!r})"
        )
