"""Routability feature extraction."""

from repro.features.extraction import (
    DEFAULT_FEATURES,
    FEATURE_BUILDERS,
    FeatureExtractor,
    available_features,
)

__all__ = [
    "FeatureExtractor",
    "DEFAULT_FEATURES",
    "FEATURE_BUILDERS",
    "available_features",
]
