"""Shared utilities: seeding, validation, BLAS thread control, benchmark gating."""

from repro.utils.rng import SeedSequenceFactory, new_rng, spawn_rngs
from repro.utils.threadpools import (
    BLAS_AUTO,
    BlasInfo,
    blas_info,
    blas_thread_limit,
    get_blas_threads,
    parse_blas_threads,
    resolve_blas_threads,
    set_blas_threads,
)
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_shape,
)

__all__ = [
    "new_rng",
    "spawn_rngs",
    "SeedSequenceFactory",
    "check_positive",
    "check_probability",
    "check_in_range",
    "check_shape",
    "BLAS_AUTO",
    "BlasInfo",
    "blas_info",
    "blas_thread_limit",
    "get_blas_threads",
    "set_blas_threads",
    "parse_blas_threads",
    "resolve_blas_threads",
]
