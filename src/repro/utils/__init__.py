"""Shared utilities: seeding, validation helpers, and lightweight logging."""

from repro.utils.rng import SeedSequenceFactory, new_rng, spawn_rngs
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_shape,
)

__all__ = [
    "new_rng",
    "spawn_rngs",
    "SeedSequenceFactory",
    "check_positive",
    "check_probability",
    "check_in_range",
    "check_shape",
]
