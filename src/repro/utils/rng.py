"""Random-number-generator helpers.

Every stochastic component of the library (netlist generators, placers,
model initialization, data shuffling, federated client sampling) receives an
explicit :class:`numpy.random.Generator`.  Nothing in the library touches the
global NumPy random state, which keeps experiments reproducible and lets
tests construct independent streams cheaply.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.SeedSequence, np.random.Generator, None]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from a flexible seed.

    Parameters
    ----------
    seed:
        ``None`` (non-deterministic), an integer, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` statistically independent generators from ``seed``.

    Useful to hand one independent stream to each federated client.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive child seeds from the generator itself so repeated calls with
        # the same generator advance its state (and therefore differ).
        children = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(child)) for child in children]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


class SeedSequenceFactory:
    """Deterministically mints named sub-seeds from one root seed.

    The factory guarantees that the generator obtained for a given name is a
    pure function of ``(root_seed, name)``, so adding a new consumer of
    randomness does not perturb existing ones.
    """

    def __init__(self, root_seed: int = 0):
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def seed_for(self, name: str) -> int:
        """Return a stable 63-bit integer seed for ``name``."""
        digest = np.random.SeedSequence(
            [self._root_seed, abs(hash_str(name)) % (2**32)]
        ).generate_state(1)[0]
        return int(digest)

    def rng_for(self, name: str) -> np.random.Generator:
        """Return a generator dedicated to ``name``."""
        return np.random.default_rng(self.seed_for(name))

    def spawn(self, name: str, count: int) -> List[np.random.Generator]:
        """Return ``count`` independent generators for ``name``."""
        return spawn_rngs(self.seed_for(name), count)


def hash_str(text: str) -> int:
    """A stable (process-independent) string hash based on FNV-1a."""
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) % (2**64)
    return value


def ensure_seed(seed: Optional[int], default: int = 0) -> int:
    """Coerce an optional seed into a concrete integer."""
    return default if seed is None else int(seed)
