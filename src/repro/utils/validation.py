"""Small argument-validation helpers used across the library.

These helpers raise ``ValueError`` with consistent, descriptive messages so
call sites stay one line long and error messages stay uniform.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

Number = Union[int, float]


def check_positive(name: str, value: Number, allow_zero: bool = False) -> Number:
    """Validate that ``value`` is positive (or non-negative if ``allow_zero``)."""
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value!r}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_probability(name: str, value: Number) -> Number:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= float(value) <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_range(name: str, value: Number, low: Number, high: Number) -> Number:
    """Validate that ``value`` lies in the closed interval [low, high]."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_shape(name: str, array: np.ndarray, expected: Tuple[int, ...]) -> np.ndarray:
    """Validate an array's shape; ``-1`` entries in ``expected`` are wildcards."""
    actual = np.asarray(array).shape
    if len(actual) != len(expected):
        raise ValueError(
            f"{name} must have {len(expected)} dimensions {expected}, got shape {actual}"
        )
    for axis, (got, want) in enumerate(zip(actual, expected)):
        if want != -1 and got != want:
            raise ValueError(
                f"{name} has shape {actual}, expected {expected} (mismatch at axis {axis})"
            )
    return array


def check_choice(name: str, value: str, choices: Sequence[str]) -> str:
    """Validate that ``value`` is one of ``choices``."""
    if value not in choices:
        raise ValueError(f"{name} must be one of {sorted(choices)}, got {value!r}")
    return value
