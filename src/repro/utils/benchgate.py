"""The perf-regression gate: diff fresh benchmark records against baselines.

PR 5 made every benchmark emit machine-readable records
(``benchmarks/results/<name>.json``, written by
``benchmarks/conftest.write_records``).  This module makes those records
load-bearing: curated known-good copies live under
``benchmarks/baselines/``, and ``repro bench diff`` compares a fresh
results directory against them **per (op, config) key** with a relative
tolerance, prints a table, and exits nonzero on any regression.  CI runs
the cheap benchmarks and then the gate, so the 11.8s → 2.8s per-round
trajectory cannot silently erode.

Comparability rules
-------------------
Timing is only meaningful between runs of the same machine class, so each
record file's environment header (machine, cpu_count, BLAS vendor — see
``write_records``) is compared first; on mismatch the whole file is
**skipped with a warning** instead of failing, which is what lets baselines
committed from a developer box coexist with CI runners of a different
shape.  Keys present only in the baseline ("missing") or only in the fresh
results ("new") are warnings, not failures — benchmarks evolve — and only
a measured slowdown beyond tolerance exits nonzero.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default relative tolerance: a record regresses when it is more than this
#: fraction slower than its baseline.  Generous by default because CI
#: machines are noisy; the CI job passes an explicit --tolerance.
DEFAULT_TOLERANCE = 0.25

#: Environment-header keys that must agree for timings to be comparable.
#: Only keys present in *both* headers are compared, so baselines recorded
#: before a key existed stay comparable.
ENV_COMPARE_KEYS = ("machine", "cpu_count", "blas_vendor")

#: Row statuses, in severity order.  Only ``regression`` fails the gate.
OK = "ok"
IMPROVED = "improved"
NEW = "new"
MISSING = "missing"
SKIPPED_ENV = "skipped-env"
REGRESSION = "regression"


@dataclass
class DiffRow:
    """One (op, config) comparison between a baseline and a fresh record."""

    benchmark: str
    op: str
    config: str
    baseline_ms: Optional[float]
    current_ms: Optional[float]
    status: str
    note: str = ""

    @property
    def ratio(self) -> Optional[float]:
        """current / baseline wall-clock ratio (>1 means slower)."""
        if not self.baseline_ms or self.current_ms is None:
            return None
        return self.current_ms / self.baseline_ms


def load_records(path: Path) -> Dict[str, object]:
    """Parse one ``write_records`` JSON file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "records" not in payload:
        raise ValueError(f"{path} is not a benchmark record file (no 'records' key)")
    return payload


def record_key(record: Dict[str, object]) -> Tuple[str, str]:
    """The (op, config) identity of one measurement."""
    return str(record.get("op", "")), str(record.get("config", ""))


def environment_mismatch(
    baseline_env: Dict[str, object], fresh_env: Dict[str, object]
) -> Optional[str]:
    """A human-readable mismatch description, or ``None`` when comparable."""
    differences = []
    for key in ENV_COMPARE_KEYS:
        if key in baseline_env and key in fresh_env and baseline_env[key] != fresh_env[key]:
            differences.append(f"{key}: baseline {baseline_env[key]!r} vs current {fresh_env[key]!r}")
    return "; ".join(differences) if differences else None


def diff_benchmark(
    baseline: Dict[str, object],
    fresh: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[DiffRow]:
    """Compare two record files per (op, config) key.

    A record regresses when ``current_ms > baseline_ms * (1 + tolerance)``
    and improves when faster than ``baseline_ms * (1 - tolerance)``; keys
    on only one side become ``missing``/``new`` informational rows.  An
    environment mismatch collapses the whole file to one ``skipped-env``
    row (cross-machine timings are noise, not signal).
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    name = str(baseline.get("benchmark", "?"))
    mismatch = environment_mismatch(
        dict(baseline.get("environment") or {}), dict(fresh.get("environment") or {})
    )
    if mismatch is not None:
        return [
            DiffRow(
                benchmark=name,
                op="*",
                config="*",
                baseline_ms=None,
                current_ms=None,
                status=SKIPPED_ENV,
                note=f"environments differ ({mismatch}); timings not comparable",
            )
        ]
    baseline_by_key = {record_key(r): r for r in baseline.get("records", [])}
    fresh_by_key = {record_key(r): r for r in fresh.get("records", [])}
    rows: List[DiffRow] = []
    for key, base_record in baseline_by_key.items():
        op, config = key
        base_ms = base_record.get("ms")
        fresh_record = fresh_by_key.get(key)
        if fresh_record is None:
            rows.append(
                DiffRow(name, op, config, base_ms, None, MISSING, "no fresh record for this key")
            )
            continue
        current_ms = fresh_record.get("ms")
        if base_ms is None or current_ms is None:
            # Records without timings (e.g. pure memory measurements) have
            # nothing to gate; keep them visible as ok.
            rows.append(DiffRow(name, op, config, base_ms, current_ms, OK, "no timing to compare"))
            continue
        if current_ms > float(base_ms) * (1.0 + tolerance):
            status, note = REGRESSION, f"slower than baseline beyond {tolerance:.0%} tolerance"
        elif current_ms < float(base_ms) * (1.0 - tolerance):
            status, note = IMPROVED, "faster than baseline beyond tolerance (update the baseline?)"
        else:
            status, note = OK, ""
        rows.append(DiffRow(name, op, config, float(base_ms), float(current_ms), status, note))
    for key in fresh_by_key.keys() - baseline_by_key.keys():
        op, config = key
        rows.append(
            DiffRow(
                name, op, config, None, fresh_by_key[key].get("ms"), NEW, "no baseline for this key"
            )
        )
    return rows


def diff_directories(
    baselines_dir: Path,
    results_dir: Path,
    tolerance: float = DEFAULT_TOLERANCE,
    names: Optional[Sequence[str]] = None,
) -> Tuple[List[DiffRow], List[str]]:
    """Diff every baseline ``<name>.json`` against ``results_dir/<name>.json``.

    Returns the comparison rows plus directory-level warnings (baselines
    with no fresh counterpart — e.g. a gate run that only executed the
    cheap benchmarks — are warned about and skipped, never failed).
    """
    baselines_dir, results_dir = Path(baselines_dir), Path(results_dir)
    if not baselines_dir.is_dir():
        raise FileNotFoundError(f"baselines directory {baselines_dir} does not exist")
    rows: List[DiffRow] = []
    warnings: List[str] = []
    baseline_paths = sorted(baselines_dir.glob("*.json"))
    if names:
        wanted = set(names)
        baseline_paths = [p for p in baseline_paths if p.stem in wanted]
        unknown = wanted - {p.stem for p in baseline_paths}
        if unknown:
            raise FileNotFoundError(
                f"no baseline record file for {sorted(unknown)} under {baselines_dir}"
            )
    if not baseline_paths:
        warnings.append(f"no baseline record files under {baselines_dir}")
    for baseline_path in baseline_paths:
        fresh_path = results_dir / baseline_path.name
        if not fresh_path.exists():
            warnings.append(
                f"{baseline_path.stem}: no fresh results at {fresh_path} (benchmark not run); skipped"
            )
            continue
        rows.extend(
            diff_benchmark(load_records(baseline_path), load_records(fresh_path), tolerance)
        )
    return rows, warnings


def format_table(rows: Iterable[DiffRow]) -> str:
    """Render comparison rows as the fixed-width table ``repro bench diff`` prints."""
    rows = list(rows)
    header = (
        f"{'benchmark':<22} {'op':<26} {'config':<22} "
        f"{'baseline ms':>12} {'current ms':>12} {'ratio':>7}  status"
    )
    lines = [header, "-" * len(header)]
    for row in sorted(rows, key=lambda r: (r.benchmark, r.op, r.config)):
        baseline = f"{row.baseline_ms:.3f}" if row.baseline_ms is not None else "-"
        current = f"{row.current_ms:.3f}" if row.current_ms is not None else "-"
        ratio = f"{row.ratio:.2f}x" if row.ratio is not None else "-"
        status = row.status + (f" ({row.note})" if row.note else "")
        lines.append(
            f"{row.benchmark:<22} {row.op:<26} {row.config:<22} "
            f"{baseline:>12} {current:>12} {ratio:>7}  {status}"
        )
    counts: Dict[str, int] = {}
    for row in rows:
        counts[row.status] = counts.get(row.status, 0) + 1
    summary = ", ".join(f"{count} {status}" for status, count in sorted(counts.items()))
    lines.append("")
    lines.append(f"{len(rows)} compared: {summary}" if rows else "nothing compared")
    return "\n".join(lines)


def has_regression(rows: Iterable[DiffRow]) -> bool:
    """Whether any row fails the gate."""
    return any(row.status == REGRESSION for row in rows)
