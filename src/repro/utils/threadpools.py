"""BLAS thread-pool detection and control for compute-saturation scheduling.

NumPy links against a threaded BLAS (OpenBLAS on most wheels, MKL or BLIS
elsewhere) whose GEMM kernels already fan out across every core.  That is
exactly right for serial execution — one client's conv/GEMM saturates the
machine — and exactly wrong for the process/thread execution backends: P
workers each running a T-thread GEMM oversubscribe the cores P*T-fold, and
the context-switch thrash can make the "parallel" backends *slower* than
serial (the pre-PR ``benchmarks/results/execution_backends.json`` records
show exactly this).

This module gives the execution layer the knob it needs:

* :func:`blas_info` detects the BLAS vendor, version, and thread count by
  probing the shared library NumPy actually loaded (ctypes, no imports
  beyond the stdlib).  OpenBLAS — including the ``scipy-openblas`` builds
  shipped in manylinux wheels, whose symbols carry a ``scipy_`` prefix and
  ``64_`` suffix — exposes runtime setters; MKL does too.  Anything else
  degrades gracefully to "detected but uncontrollable".
* :func:`set_blas_threads` / :func:`get_blas_threads` are the runtime
  control.  For vendors without a runtime setter the knob falls back to
  exporting the conventional environment variables
  (``OPENBLAS_NUM_THREADS``/``MKL_NUM_THREADS``/``BLIS_NUM_THREADS``/
  ``OMP_NUM_THREADS``), which only affects BLAS pools that have not
  started yet — i.e. freshly spawned worker processes, the case the
  execution backends care about.
* :func:`blas_thread_limit` is a context manager that pins the count for a
  region and restores the previous value, which is how the serial and
  thread backends scope their policy to one ``map`` call.
* :func:`resolve_blas_threads` turns the user-facing policy (``"auto"`` or
  an explicit count, see ``--blas-threads``) into a concrete per-worker
  thread count: ``auto`` leaves a serial run alone (BLAS already uses every
  core by default) and pins each of W pool workers to ``cores // W``
  threads (at least 1) so the workers*threads product never exceeds the
  machine.

Everything here is best-effort by design: on an exotic platform every probe
fails closed (``controllable=False``), the setters return ``False``, and
the execution backends run exactly as they did before this module existed.
"""

from __future__ import annotations

import ctypes
import logging
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple, Union

logger = logging.getLogger(__name__)

#: The user-facing policy values accepted by ``--blas-threads`` (an integer
#: string is also accepted and pins the count exactly).
BLAS_AUTO = "auto"

#: A BLAS thread policy: ``None`` (leave the library alone), ``"auto"``
#: (core-aware resolution, see :func:`resolve_blas_threads`), or an exact
#: positive count.
BlasPolicy = Optional[Union[int, str]]

# -- library detection -----------------------------------------------------------
#
# The BLAS NumPy uses is already mapped into this process (importing
# repro.nn imports numpy).  dlopen()-ing a library that is already loaded
# returns the existing handle, so probing /proc/self/maps for BLAS-looking
# shared objects and re-opening them is cheap and affects nothing.

#: (vendor, symbol prefixes) probed against every candidate library.
#: OpenBLAS appears both under its classic symbol names and under the
#: ``scipy_openblas`` prefix used by the scipy-openblas32/64 wheels; the
#: ILP64 builds additionally suffix every symbol with ``64_``.
_OPENBLAS_PREFIXES: Tuple[str, ...] = ("openblas", "scipy_openblas")
_SYMBOL_SUFFIXES: Tuple[str, ...] = ("", "64_")

#: Environment variables understood by the common BLAS implementations,
#: exported by the env-var fallback path of :func:`set_blas_threads`.
BLAS_ENV_VARS: Tuple[str, ...] = (
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "BLIS_NUM_THREADS",
    "OMP_NUM_THREADS",
)


@dataclass(frozen=True)
class BlasInfo:
    """What was learned about the process's BLAS library.

    ``controllable`` means a runtime thread-count setter was found;
    without one, :func:`set_blas_threads` can only export environment
    variables for BLAS pools that have not started yet.
    """

    vendor: str  #: "openblas", "mkl", "blis", or "unknown"
    version: Optional[str]  #: e.g. "OpenBLAS 0.3.31" (vendor-reported)
    controllable: bool
    max_threads: Optional[int]  #: thread count at detection time


class _BlasControl:
    """Resolved function pointers for one detected BLAS library."""

    def __init__(
        self,
        vendor: str,
        version: Optional[str],
        getter: Optional[Callable[[], int]],
        setter: Optional[Callable[[int], None]],
    ):
        self.vendor = vendor
        self.version = version
        self.getter = getter
        self.setter = setter


def _candidate_libraries() -> list:
    """Paths of BLAS-looking shared objects mapped into this process."""
    candidates = []
    try:
        with open("/proc/self/maps", "r", encoding="ascii", errors="replace") as maps:
            for line in maps:
                path = line.rstrip("\n").split(" ", 5)[-1].strip()
                if not path.startswith("/"):
                    continue
                name = os.path.basename(path).lower()
                if any(tag in name for tag in ("openblas", "mkl_rt", "blis", "libblas")):
                    if path not in candidates:
                        candidates.append(path)
    except OSError:  # pragma: no cover - non-Linux platforms
        pass
    return candidates


def _probe_openblas(lib: ctypes.CDLL) -> Optional[_BlasControl]:
    for prefix in _OPENBLAS_PREFIXES:
        for suffix in _SYMBOL_SUFFIXES:
            getter = getattr(lib, f"{prefix}_get_num_threads{suffix}", None)
            setter = getattr(lib, f"{prefix}_set_num_threads{suffix}", None)
            if getter is None or setter is None:
                continue
            getter.restype = ctypes.c_int
            setter.argtypes = [ctypes.c_int]
            setter.restype = None
            version = None
            config = getattr(lib, f"{prefix}_get_config{suffix}", None)
            if config is not None:
                config.restype = ctypes.c_char_p
                raw = config()
                if raw:
                    # "OpenBLAS 0.3.31.188.0  USE64BITINT ... MAX_THREADS=64"
                    version = raw.decode("ascii", errors="replace").split("  ")[0].strip()
            return _BlasControl("openblas", version, getter, setter)
    return None


def _probe_mkl(lib: ctypes.CDLL) -> Optional[_BlasControl]:
    getter = getattr(lib, "MKL_Get_Max_Threads", None) or getattr(lib, "mkl_get_max_threads", None)
    setter = getattr(lib, "MKL_Set_Num_Threads", None) or getattr(lib, "mkl_set_num_threads", None)
    if getter is None or setter is None:
        return None
    getter.restype = ctypes.c_int
    version = None
    get_version = getattr(lib, "mkl_get_version_string", None) or getattr(
        lib, "MKL_Get_Version_String", None
    )
    if get_version is not None:
        buffer = ctypes.create_string_buffer(256)
        get_version(buffer, 256)
        version = buffer.value.decode("ascii", errors="replace").strip() or None
    if getattr(setter, "argtypes", None) is None:
        # MKL_Set_Num_Threads takes the count by value.
        setter.argtypes = [ctypes.c_int]
        setter.restype = None
    return _BlasControl("mkl", version, getter, setter)


def _probe_blis(lib: ctypes.CDLL) -> Optional[_BlasControl]:
    getter = getattr(lib, "bli_thread_get_num_threads", None)
    setter = getattr(lib, "bli_thread_set_num_threads", None)
    if getter is None or setter is None:
        return None
    getter.restype = ctypes.c_int
    setter.argtypes = [ctypes.c_int]
    setter.restype = None
    return _BlasControl("blis", None, getter, setter)


#: Lazily detected control block; ``False`` means "not probed yet" so that a
#: failed probe (``None``) is cached too.
_CONTROL: Union[_BlasControl, None, bool] = False


def _control() -> Optional[_BlasControl]:
    global _CONTROL
    if _CONTROL is False:
        control = None
        for path in _candidate_libraries():
            try:
                lib = ctypes.CDLL(path)
            except OSError:  # pragma: no cover - unloadable mapping
                continue
            control = _probe_openblas(lib) or _probe_mkl(lib) or _probe_blis(lib)
            if control is not None:
                break
        _CONTROL = control
    return _CONTROL if _CONTROL is not False else None


def reset_blas_detection() -> None:
    """Forget the cached probe (tests monkeypatching the detection use this)."""
    global _CONTROL
    _CONTROL = False


def blas_info() -> BlasInfo:
    """Vendor / version / controllability of the BLAS in this process.

    Detection runs once and is cached; an undetectable BLAS reports
    ``vendor="unknown"`` with ``controllable=False``.
    """
    control = _control()
    if control is None:
        return BlasInfo(vendor="unknown", version=None, controllable=False, max_threads=None)
    return BlasInfo(
        vendor=control.vendor,
        version=control.version,
        controllable=control.setter is not None,
        max_threads=int(control.getter()) if control.getter is not None else None,
    )


def get_blas_threads() -> Optional[int]:
    """The BLAS pool's current thread count, or ``None`` when uncontrollable."""
    control = _control()
    if control is None or control.getter is None:
        return None
    return int(control.getter())


def set_blas_threads(count: int) -> bool:
    """Pin the BLAS pool to ``count`` threads.

    Returns ``True`` when the runtime setter took effect.  Without one the
    conventional environment variables are exported instead (affecting only
    BLAS pools that have not started yet — e.g. freshly spawned workers)
    and ``False`` is returned.
    """
    count = int(count)
    if count < 1:
        raise ValueError(f"BLAS thread count must be positive, got {count}")
    control = _control()
    if control is not None and control.setter is not None:
        control.setter(count)
        return True
    for name in BLAS_ENV_VARS:
        os.environ[name] = str(count)
    return False


@contextmanager
def blas_thread_limit(count: Optional[int]) -> Iterator[None]:
    """Pin the BLAS thread count inside the ``with`` block, then restore it.

    ``count=None`` (or an uncontrollable BLAS) makes the context a no-op,
    so callers can pass a resolved policy straight through.
    """
    if count is None:
        yield
        return
    previous = get_blas_threads()
    took_effect = set_blas_threads(count)
    try:
        yield
    finally:
        if took_effect and previous is not None:
            set_blas_threads(previous)


def parse_blas_threads(text: str) -> BlasPolicy:
    """Parse a ``--blas-threads`` CLI value: ``"auto"`` or a positive int."""
    lowered = str(text).strip().lower()
    if lowered == BLAS_AUTO:
        return BLAS_AUTO
    try:
        count = int(lowered)
    except ValueError:
        raise ValueError(
            f"invalid BLAS thread policy {text!r}: expected 'auto' or a positive integer"
        ) from None
    if count < 1:
        raise ValueError(f"BLAS thread count must be positive, got {count}")
    return count


def check_blas_policy(policy: BlasPolicy) -> BlasPolicy:
    """Validate a BLAS thread policy value (``None``, ``"auto"``, or int >= 1)."""
    if policy is None or policy == BLAS_AUTO:
        return policy
    if isinstance(policy, bool) or not isinstance(policy, int):
        raise ValueError(
            f"invalid BLAS thread policy {policy!r}: expected None, 'auto', or a positive integer"
        )
    if policy < 1:
        raise ValueError(f"BLAS thread count must be positive, got {policy}")
    return policy


def resolve_blas_threads(
    policy: BlasPolicy, workers: int, cores: Optional[int] = None
) -> Optional[int]:
    """Resolve a policy into a concrete per-worker BLAS thread count.

    ``None`` means "leave the BLAS library alone" and resolves to ``None``
    everywhere.  An integer pins every worker to that count.  ``"auto"``
    is the core-aware rule:

    * ``workers <= 1`` (serial execution): ``None`` — BLAS already spreads
      one client's GEMMs across every core by default, and not touching the
      pool preserves any limit the user set via environment variables.
    * ``workers > 1``: ``max(1, cores // workers)`` — the pool's
      ``workers * blas_threads`` product never exceeds the machine, which
      is the whole point (see the module docstring).
    """
    check_blas_policy(policy)
    if policy is None:
        return None
    if policy != BLAS_AUTO:
        return int(policy)
    if workers <= 1:
        return None
    cores = cores if cores is not None else (os.cpu_count() or 1)
    return max(1, cores // max(1, workers))
