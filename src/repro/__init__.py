"""repro: reproduction of "Towards Collaborative Intelligence: Routability
Estimation based on Decentralized Private Data" (Pan et al., DAC 2022).

The package is organized as a set of substrates plus the paper's core
contribution:

``repro.nn``
    A from-scratch NumPy deep-learning library (convolutions, batch
    normalization, transposed convolutions, pixel shuffle, optimizers,
    losses) used in place of PyTorch.
``repro.eda``
    A synthetic physical-design flow (netlist generation, placement,
    global-routing congestion, DRC hotspot labeling) used in place of the
    commercial Design Compiler / Innovus flow of the paper.
``repro.features``
    Routability feature extraction (cell density, pin density, RUDY,
    fly lines, macro maps).
``repro.data``
    Dataset construction and the paper's 9-client decentralized split.
``repro.models``
    The three routability estimators: FLNet, RouteNet, and PROS.
``repro.fl``
    The decentralized-training framework: local / centralized baselines,
    FedAvg, FedProx, and personalization (FedProx-LG, IFCA, fine-tuning,
    assigned clustering, alpha-portion sync).
``repro.metrics``
    ROC AUC and related classification metrics.
``repro.experiments``
    Configurations and runners that regenerate the paper's tables.
``repro.cli``
    The ``repro`` console script (list-models, generate-data, route,
    reproduce, communication).
"""

from repro import data, eda, experiments, features, fl, metrics, models, nn, utils

__version__ = "1.0.0"

__all__ = [
    "nn",
    "eda",
    "features",
    "data",
    "models",
    "fl",
    "metrics",
    "experiments",
    "utils",
    "__version__",
]
