"""A from-scratch NumPy deep-learning substrate.

This subpackage replaces PyTorch for the purposes of the reproduction: it
provides exactly the operators the three routability estimators (FLNet,
RouteNet, PROS) need — 2-D convolutions with dilation, transposed
convolutions, batch normalization, pixel shuffle, pooling — together with
losses, optimizers, learning-rate schedulers, initialization, state-dict
serialization and numerical gradient checking.
"""

from repro.nn import functional, init
from repro.nn.gradcheck import (
    check_layer_input_gradient,
    check_layer_parameter_gradients,
    max_relative_error,
    numerical_gradient,
)
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    Dropout,
    Flatten,
    GroupNorm,
    InstanceNorm2d,
    LeakyReLU,
    Linear,
    MaxPool2d,
    NearestUpsample2d,
    PixelShuffle,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import (
    BCELoss,
    BCEWithLogitsLoss,
    DiceLoss,
    FocalLoss,
    Loss,
    MSELoss,
    WeightedMSELoss,
    make_loss,
)
from repro.nn.module import Identity, Module, Sequential
from repro.nn.optim import (
    SGD,
    Adam,
    Optimizer,
    clip_grad_norm,
    clip_grad_value,
    make_optimizer,
)
from repro.nn.schedulers import (
    ConstantLR,
    CosineAnnealingLR,
    ExponentialLR,
    LRScheduler,
    MultiStepLR,
    StepLR,
    WarmupLR,
    make_scheduler,
)
from repro.nn.serialization import load_state_dict, save_state_dict, state_dicts_allclose
from repro.nn.dtypes import COMPUTE_DTYPE_CHOICES, resolve_compute_dtype
from repro.nn.kernels import (
    compiled_kernels_disabled,
    compiled_kernels_enabled,
    kernel_backend,
)
from repro.nn.parameter import Parameter
from repro.nn.workspace import Workspace, workspaces_disabled, workspaces_enabled

__all__ = [
    "functional",
    "init",
    "COMPUTE_DTYPE_CHOICES",
    "resolve_compute_dtype",
    "Workspace",
    "workspaces_disabled",
    "workspaces_enabled",
    "compiled_kernels_disabled",
    "compiled_kernels_enabled",
    "kernel_backend",
    "Parameter",
    "Module",
    "Sequential",
    "Identity",
    "Conv2d",
    "ConvTranspose2d",
    "BatchNorm2d",
    "GroupNorm",
    "InstanceNorm2d",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "MaxPool2d",
    "AvgPool2d",
    "PixelShuffle",
    "NearestUpsample2d",
    "Linear",
    "Flatten",
    "Dropout",
    "Loss",
    "MSELoss",
    "BCELoss",
    "BCEWithLogitsLoss",
    "FocalLoss",
    "DiceLoss",
    "WeightedMSELoss",
    "make_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "make_optimizer",
    "clip_grad_norm",
    "clip_grad_value",
    "LRScheduler",
    "ConstantLR",
    "StepLR",
    "MultiStepLR",
    "ExponentialLR",
    "CosineAnnealingLR",
    "WarmupLR",
    "make_scheduler",
    "save_state_dict",
    "load_state_dict",
    "state_dicts_allclose",
    "numerical_gradient",
    "check_layer_input_gradient",
    "check_layer_parameter_gradients",
    "max_relative_error",
]
