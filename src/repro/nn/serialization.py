"""Saving and loading model state dictionaries.

State dictionaries are flat ``name -> ndarray`` mappings (see
:meth:`repro.nn.Module.state_dict`), stored as ``.npz`` archives so they stay
portable and dependency-free.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Union

import numpy as np

PathLike = Union[str, Path]


def save_state_dict(state: Dict[str, np.ndarray], path: PathLike) -> Path:
    """Write a state dictionary to ``path`` (``.npz`` appended if missing).

    The write is **atomic**: the archive is serialized to a sibling
    temporary file and moved into place with ``os.replace``, so a crash
    mid-save can truncate only the temporary file — readers always see
    either the previous complete archive or the new one, never a partial
    write.  This is what makes checkpoint directories safe to resume from
    after a hard kill.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.with_name(path.name + ".tmp")
    try:
        with open(tmp_path, "wb") as handle:
            np.savez(handle, **{key: np.asarray(value) for key, value in state.items()})
        os.replace(tmp_path, path)
    finally:
        if tmp_path.exists():
            tmp_path.unlink()
    return path


def load_state_dict(path: PathLike) -> Dict[str, np.ndarray]:
    """Read a state dictionary previously written by :func:`save_state_dict`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no state dict found at {path}")
    with np.load(path) as archive:
        return {key: archive[key].copy() for key in archive.files}


def state_dicts_allclose(
    left: Dict[str, np.ndarray], right: Dict[str, np.ndarray], atol: float = 1e-10
) -> bool:
    """Whether two state dictionaries contain the same keys and close values."""
    if set(left) != set(right):
        return False
    return all(np.allclose(left[key], right[key], atol=atol) for key in left)
