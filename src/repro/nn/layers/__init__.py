"""Neural-network layers (NumPy implementation)."""

from repro.nn.layers.activation import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.layers.conv import Conv2d, ConvTranspose2d
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.linear import Flatten, Linear
from repro.nn.layers.norm import BatchNorm2d, GroupNorm, InstanceNorm2d
from repro.nn.layers.pooling import AvgPool2d, MaxPool2d
from repro.nn.layers.upsample import NearestUpsample2d, PixelShuffle

__all__ = [
    "Conv2d",
    "ConvTranspose2d",
    "BatchNorm2d",
    "GroupNorm",
    "InstanceNorm2d",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "MaxPool2d",
    "AvgPool2d",
    "PixelShuffle",
    "NearestUpsample2d",
    "Linear",
    "Flatten",
    "Dropout",
]
