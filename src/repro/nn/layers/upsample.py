"""Upsampling layers: sub-pixel (pixel shuffle) and nearest-neighbour.

Pixel shuffle is the sub-pixel upsampling block used by PROS-style
routability estimators.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.module import Module


class PixelShuffle(Module):
    """Rearranges ``(N, C*r^2, H, W)`` into ``(N, C, H*r, W*r)``."""

    def __init__(self, upscale_factor: int):
        super().__init__()
        if upscale_factor <= 0:
            raise ValueError(f"upscale_factor must be positive, got {upscale_factor}")
        self.upscale_factor = int(upscale_factor)
        self._input_shape: Optional[Tuple[int, int, int, int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.compute_dtype)
        n, c, h, w = x.shape
        r = self.upscale_factor
        if c % (r * r) != 0:
            raise ValueError(
                f"PixelShuffle requires channels divisible by {r * r}, got {c}"
            )
        self._input_shape = x.shape
        c_out = c // (r * r)
        x = x.reshape(n, c_out, r, r, h, w)
        x = x.transpose(0, 1, 4, 2, 5, 3)
        return x.reshape(n, c_out, h * r, w * r)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("PixelShuffle.backward called before forward")
        n, c, h, w = self._input_shape
        r = self.upscale_factor
        c_out = c // (r * r)
        grad_output = np.asarray(grad_output, dtype=self.compute_dtype)
        grad = grad_output.reshape(n, c_out, h, r, w, r)
        grad = grad.transpose(0, 1, 3, 5, 2, 4)
        return grad.reshape(n, c, h, w)


class NearestUpsample2d(Module):
    """Nearest-neighbour spatial upsampling by an integer factor."""

    def __init__(self, scale_factor: int):
        super().__init__()
        if scale_factor <= 0:
            raise ValueError(f"scale_factor must be positive, got {scale_factor}")
        self.scale_factor = int(scale_factor)
        self._input_shape: Optional[Tuple[int, int, int, int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.compute_dtype)
        self._input_shape = x.shape
        s = self.scale_factor
        return x.repeat(s, axis=2).repeat(s, axis=3)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("NearestUpsample2d.backward called before forward")
        n, c, h, w = self._input_shape
        s = self.scale_factor
        grad_output = np.asarray(grad_output, dtype=self.compute_dtype)
        grad = grad_output.reshape(n, c, h, s, w, s)
        return grad.sum(axis=(3, 5))
