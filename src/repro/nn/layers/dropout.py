"""Dropout regularization."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module


class Dropout(Module):
    """Inverted dropout: active only in training mode.

    Each element is zeroed with probability ``p`` and the survivors are
    scaled by ``1 / (1 - p)`` so the expected activation is unchanged.
    """

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.compute_dtype)
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        # The survivor draw stays float64 (same RNG stream for every compute
        # dtype); only the resulting mask is kept in the compute dtype.
        self._mask = np.divide(self._rng.random(x.shape) < keep, keep, dtype=self.compute_dtype)
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = np.asarray(grad_output, dtype=self.compute_dtype)
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
