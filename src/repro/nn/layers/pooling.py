"""Spatial pooling layers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.functional import col2im, conv_output_size, im2col
from repro.nn.module import Module


class MaxPool2d(Module):
    """Max pooling with a square window."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0):
        super().__init__()
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else int(kernel_size)
        self.padding = int(padding)
        self._cache = None

    def output_shape(self, height: int, width: int) -> Tuple[int, int]:
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.padding)
        return out_h, out_w

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.compute_dtype)
        n, c, h, w = x.shape
        out_h, out_w = self.output_shape(h, w)
        # Pool each channel independently by treating channels as batch items.
        reshaped = x.reshape(n * c, 1, h, w)
        cols = im2col(reshaped, self.kernel_size, self.kernel_size, self.stride, self.padding)
        argmax = cols.argmax(axis=1)
        out = np.take_along_axis(cols, argmax[:, None, :], axis=1).squeeze(1)
        out = out.reshape(n, c, out_h, out_w)
        self._cache = (argmax, cols.shape, x.shape)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("MaxPool2d.backward called before forward")
        argmax, cols_shape, x_shape = self._cache
        n, c, h, w = x_shape
        grad_output = np.asarray(grad_output, dtype=self.compute_dtype)
        grad_cols = np.zeros(cols_shape, dtype=grad_output.dtype)
        flat_grad = grad_output.reshape(n * c, 1, -1)
        np.put_along_axis(grad_cols, argmax[:, None, :], flat_grad, axis=1)
        grad_reshaped = col2im(
            grad_cols, (n * c, 1, h, w), self.kernel_size, self.kernel_size, self.stride, self.padding
        )
        return grad_reshaped.reshape(n, c, h, w)


class AvgPool2d(Module):
    """Average pooling with a square window."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0):
        super().__init__()
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else int(kernel_size)
        self.padding = int(padding)
        self._cache = None

    def output_shape(self, height: int, width: int) -> Tuple[int, int]:
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.padding)
        return out_h, out_w

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.compute_dtype)
        n, c, h, w = x.shape
        out_h, out_w = self.output_shape(h, w)
        reshaped = x.reshape(n * c, 1, h, w)
        cols = im2col(reshaped, self.kernel_size, self.kernel_size, self.stride, self.padding)
        out = cols.mean(axis=1).reshape(n, c, out_h, out_w)
        self._cache = (cols.shape, x.shape)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("AvgPool2d.backward called before forward")
        cols_shape, x_shape = self._cache
        n, c, h, w = x_shape
        window = self.kernel_size * self.kernel_size
        grad_output = np.asarray(grad_output, dtype=self.compute_dtype)
        flat_grad = grad_output.reshape(n * c, 1, -1) / window
        grad_cols = np.broadcast_to(flat_grad, cols_shape).copy()
        grad_reshaped = col2im(
            grad_cols, (n * c, 1, h, w), self.kernel_size, self.kernel_size, self.stride, self.padding
        )
        return grad_reshaped.reshape(n, c, h, w)
