"""Batch normalization.

Batch normalization is central to the paper's argument: RouteNet- and
PROS-style deep estimators rely on it, and under federated parameter
aggregation its running statistics (and the scale/shift parameters learned
around unstable batch statistics) degrade, which is one of the reasons FLNet
deliberately avoids it (Section 4.2 of the paper).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.module import Module
from repro.nn.parameter import Parameter


class BatchNorm2d(Module):
    """Batch normalization over the channel axis of NCHW tensors.

    During training the layer normalizes with batch statistics and updates
    exponential running averages; during evaluation it normalizes with the
    running averages.  ``weight`` (gamma) and ``bias`` (beta) are trainable;
    ``running_mean`` and ``running_var`` are buffers that participate in
    ``state_dict`` (and therefore in federated parameter aggregation, exactly
    as the paper describes).
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        if not 0.0 < momentum <= 1.0:
            raise ValueError(f"momentum must be in (0, 1], got {momentum}")
        self.num_features = int(num_features)
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.weight = Parameter(np.ones(num_features), name="weight")
        self.bias = Parameter(np.zeros(num_features), name="bias")
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))
        self._cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.compute_dtype)
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm2d expected input of shape (N, {self.num_features}, H, W), got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            new_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            # Use the unbiased variance for the running estimate, matching PyTorch.
            count = x.shape[0] * x.shape[2] * x.shape[3]
            unbiased = var * count / max(count - 1, 1)
            new_var = (1 - self.momentum) * self.running_var + self.momentum * unbiased
            self.set_buffer("running_mean", new_mean)
            self.set_buffer("running_var", new_var)
        else:
            mean = self.running_mean
            var = self.running_var
        std_inv = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean.reshape(1, -1, 1, 1)) * std_inv.reshape(1, -1, 1, 1)
        out = self.weight.data.reshape(1, -1, 1, 1) * x_hat + self.bias.data.reshape(1, -1, 1, 1)
        self._cache = (x_hat, std_inv, np.asarray(self.training))
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("BatchNorm2d.backward called before forward")
        x_hat, std_inv, was_training = self._cache
        grad_output = np.asarray(grad_output, dtype=self.compute_dtype)
        gamma = self.weight.data.reshape(1, -1, 1, 1)

        self.weight.grad += (grad_output * x_hat).sum(axis=(0, 2, 3))
        self.bias.grad += grad_output.sum(axis=(0, 2, 3))

        grad_x_hat = grad_output * gamma
        if not bool(was_training):
            # In eval mode the normalization statistics are constants.
            return grad_x_hat * std_inv.reshape(1, -1, 1, 1)

        n, _, h, w = grad_output.shape
        count = n * h * w
        sum_grad = grad_x_hat.sum(axis=(0, 2, 3), keepdims=True)
        sum_grad_xhat = (grad_x_hat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        grad_input = (
            std_inv.reshape(1, -1, 1, 1)
            / count
            * (count * grad_x_hat - sum_grad - x_hat * sum_grad_xhat)
        )
        return grad_input

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchNorm2d({self.num_features}, eps={self.eps}, momentum={self.momentum})"


class GroupNorm(Module):
    """Group normalization over NCHW tensors.

    Unlike batch normalization it carries no running statistics and
    normalizes each sample independently, which makes it a natural candidate
    for federated training where aggregated BN statistics are the problem the
    paper highlights (Section 4.2).  ``num_groups == num_channels`` recovers
    instance normalization; ``num_groups == 1`` recovers layer normalization
    over (C, H, W).
    """

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5):
        super().__init__()
        if num_groups <= 0 or num_channels <= 0:
            raise ValueError("num_groups and num_channels must be positive")
        if num_channels % num_groups != 0:
            raise ValueError(
                f"num_channels ({num_channels}) must be divisible by num_groups ({num_groups})"
            )
        self.num_groups = int(num_groups)
        self.num_channels = int(num_channels)
        self.eps = float(eps)
        self.weight = Parameter(np.ones(num_channels), name="weight")
        self.bias = Parameter(np.zeros(num_channels), name="bias")
        self._cache: Optional[Tuple[np.ndarray, np.ndarray, Tuple[int, ...]]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.compute_dtype)
        if x.ndim != 4 or x.shape[1] != self.num_channels:
            raise ValueError(
                f"GroupNorm expected input of shape (N, {self.num_channels}, H, W), got {x.shape}"
            )
        n, c, h, w = x.shape
        grouped = x.reshape(n, self.num_groups, c // self.num_groups, h, w)
        mean = grouped.mean(axis=(2, 3, 4), keepdims=True)
        var = grouped.var(axis=(2, 3, 4), keepdims=True)
        std_inv = 1.0 / np.sqrt(var + self.eps)
        x_hat = ((grouped - mean) * std_inv).reshape(n, c, h, w)
        out = self.weight.data.reshape(1, -1, 1, 1) * x_hat + self.bias.data.reshape(1, -1, 1, 1)
        self._cache = (x_hat, std_inv, x.shape)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("GroupNorm.backward called before forward")
        x_hat, std_inv, shape = self._cache
        grad_output = np.asarray(grad_output, dtype=self.compute_dtype)
        n, c, h, w = shape
        group_channels = c // self.num_groups

        self.weight.grad += (grad_output * x_hat).sum(axis=(0, 2, 3))
        self.bias.grad += grad_output.sum(axis=(0, 2, 3))

        grad_x_hat = grad_output * self.weight.data.reshape(1, -1, 1, 1)
        grad_grouped = grad_x_hat.reshape(n, self.num_groups, group_channels, h, w)
        x_hat_grouped = x_hat.reshape(n, self.num_groups, group_channels, h, w)
        count = group_channels * h * w
        sum_grad = grad_grouped.sum(axis=(2, 3, 4), keepdims=True)
        sum_grad_xhat = (grad_grouped * x_hat_grouped).sum(axis=(2, 3, 4), keepdims=True)
        grad_input = (
            std_inv / count * (count * grad_grouped - sum_grad - x_hat_grouped * sum_grad_xhat)
        )
        return grad_input.reshape(n, c, h, w)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GroupNorm({self.num_groups}, {self.num_channels}, eps={self.eps})"


class InstanceNorm2d(GroupNorm):
    """Instance normalization: group normalization with one group per channel."""

    def __init__(self, num_features: int, eps: float = 1e-5):
        super().__init__(num_groups=num_features, num_channels=num_features, eps=eps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InstanceNorm2d({self.num_channels}, eps={self.eps})"
