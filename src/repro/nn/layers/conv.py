"""2-D convolution and transposed convolution layers."""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.nn import init
from repro.nn.functional import (
    col2im,
    conv_output_size,
    conv_transpose_output_size,
    im2col,
)
from repro.nn.kernels import grad_weight_gemm
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.nn.workspace import Workspace

KernelSize = Union[int, Tuple[int, int]]


def _pair(value: KernelSize) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return int(value[0]), int(value[1])
    return int(value), int(value)


class Conv2d(Module):
    """2-D convolution over NCHW inputs with stride, padding, and dilation.

    The weight has shape ``(out_channels, in_channels, kernel_h, kernel_w)``.
    The forward pass lowers the convolution to a batched matrix multiplication
    via im2col; the backward pass computes input, weight, and bias gradients
    and returns the input gradient.

    The im2col/col2im gather indices are memoized keyed by the layer
    geometry and input spatial shape (see
    :func:`repro.nn.functional._im2col_indices`), and the large per-step
    temporaries — the padded input, the im2col ``cols`` matrix,
    ``grad_cols``, and the weight-gradient staging buffer — live in a
    persistent per-layer :class:`~repro.nn.workspace.Workspace`, reused via
    ``out=`` on every step instead of being reallocated.  Workspace buffers
    are internal scratch only: the layer's outputs and input gradients are
    always freshly allocated, so callers may hold them across steps.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: KernelSize,
        stride: int = 1,
        padding: int = 0,
        dilation: int = 1,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("in_channels and out_channels must be positive")
        if stride <= 0 or dilation <= 0 or padding < 0:
            raise ValueError("stride and dilation must be positive, padding non-negative")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.dilation = int(dilation)
        kh, kw = self.kernel_size
        weight_shape = (out_channels, in_channels, kh, kw)
        self.weight = Parameter(init.kaiming_uniform(weight_shape, rng), name="weight")
        self.use_bias = bool(bias)
        if self.use_bias:
            fan_in = in_channels * kh * kw
            self.bias = Parameter(init.uniform_bias((out_channels,), fan_in, rng), name="bias")
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, int, int, int], Tuple[int, int]]] = None
        self._ws = Workspace()

    def output_shape(self, height: int, width: int) -> Tuple[int, int]:
        """Spatial output shape for an input of ``height x width``."""
        kh, kw = self.kernel_size
        out_h = conv_output_size(height, kh, self.stride, self.padding, self.dilation)
        out_w = conv_output_size(width, kw, self.stride, self.padding, self.dilation)
        return out_h, out_w

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.compute_dtype)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expected input of shape (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n, _, h, w = x.shape
        kh, kw = self.kernel_size
        out_h, out_w = self.output_shape(h, w)
        dtype = x.dtype
        padded = (
            self._ws.zeros(
                "padded", (n, self.in_channels, h + 2 * self.padding, w + 2 * self.padding), dtype
            )
            if self.padding > 0
            else None
        )
        cols_buf = self._ws.get("cols", (n, self.in_channels * kh * kw, out_h * out_w), dtype)
        cols = im2col(
            x, kh, kw, self.stride, self.padding, self.dilation, out=cols_buf, padded_out=padded
        )
        weight_matrix = self.weight.data.reshape(self.out_channels, -1)
        out = np.matmul(weight_matrix, cols)
        out = out.reshape(n, self.out_channels, out_h, out_w)
        if self.use_bias:
            out += self.bias.data.reshape(1, -1, 1, 1)
        self._cache = (cols, x.shape, (out_h, out_w))
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("Conv2d.backward called before forward")
        cols, x_shape, (out_h, out_w) = self._cache
        n = x_shape[0]
        grad_output = np.asarray(grad_output, dtype=self.compute_dtype)
        grad_flat = grad_output.reshape(n, self.out_channels, out_h * out_w)
        weight_matrix = self.weight.data.reshape(self.out_channels, -1)
        dtype = cols.dtype

        stage = self._ws.get("grad_weight_stage", (n,) + weight_matrix.shape, dtype)
        grad_weight = grad_weight_gemm(grad_flat, cols, stage=stage)
        self.weight.grad += grad_weight.reshape(self.weight.data.shape)
        if self.use_bias:
            self.bias.grad += grad_flat.sum(axis=(0, 2))

        grad_cols_buf = self._ws.get("grad_cols", cols.shape, dtype)
        if grad_cols_buf is None:
            grad_cols = np.matmul(weight_matrix.T, grad_flat)
        else:
            grad_cols = np.matmul(weight_matrix.T, grad_flat, out=grad_cols_buf)
        kh, kw = self.kernel_size
        grad_input = col2im(
            grad_cols, x_shape, kh, kw, self.stride, self.padding, self.dilation
        )
        return grad_input

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}, dilation={self.dilation})"
        )


class ConvTranspose2d(Module):
    """2-D transposed (fractionally-strided) convolution over NCHW inputs.

    The weight has shape ``(in_channels, out_channels, kernel_h, kernel_w)``
    following the PyTorch convention.  The forward pass is implemented as the
    adjoint of :class:`Conv2d` via col2im, which makes the layer exactly the
    upsampling operator used by encoder/decoder routability models such as
    RouteNet.  As with :class:`Conv2d`, the col2im/im2col gather indices are
    memoized per layer geometry and input spatial shape, and the column
    matrices are staged in a persistent per-layer workspace.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: KernelSize,
        stride: int = 1,
        padding: int = 0,
        output_padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("in_channels and out_channels must be positive")
        if stride <= 0 or padding < 0 or output_padding < 0:
            raise ValueError("stride must be positive; paddings must be non-negative")
        if output_padding >= stride:
            raise ValueError("output_padding must be smaller than stride")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.output_padding = int(output_padding)
        kh, kw = self.kernel_size
        weight_shape = (in_channels, out_channels, kh, kw)
        self.weight = Parameter(init.kaiming_uniform(weight_shape, rng), name="weight")
        self.use_bias = bool(bias)
        if self.use_bias:
            fan_in = in_channels * kh * kw
            self.bias = Parameter(init.uniform_bias((out_channels,), fan_in, rng), name="bias")
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, int, int, int]]] = None
        self._ws = Workspace()

    def output_shape(self, height: int, width: int) -> Tuple[int, int]:
        """Spatial output shape for an input of ``height x width``."""
        kh, kw = self.kernel_size
        out_h = conv_transpose_output_size(height, kh, self.stride, self.padding, self.output_padding)
        out_w = conv_transpose_output_size(width, kw, self.stride, self.padding, self.output_padding)
        return out_h, out_w

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.compute_dtype)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"ConvTranspose2d expected input of shape (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n, _, h, w = x.shape
        kh, kw = self.kernel_size
        out_h, out_w = self.output_shape(h, w)
        x_flat = x.reshape(n, self.in_channels, h * w)
        weight_matrix = self.weight.data.reshape(self.in_channels, -1)
        cols_buf = self._ws.get("cols", (n, weight_matrix.shape[1], h * w), x.dtype)
        if cols_buf is None:
            cols = np.matmul(weight_matrix.T, x_flat)
        else:
            cols = np.matmul(weight_matrix.T, x_flat, out=cols_buf)
        out = col2im(
            cols,
            (n, self.out_channels, out_h, out_w),
            kh,
            kw,
            self.stride,
            self.padding,
            dilation=1,
        )
        if self.use_bias:
            out += self.bias.data.reshape(1, -1, 1, 1)
        self._cache = (x_flat, (n, self.out_channels, out_h, out_w))
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("ConvTranspose2d.backward called before forward")
        x_flat, out_shape = self._cache
        n, _, out_h, out_w = out_shape
        kh, kw = self.kernel_size
        grad_output = np.asarray(grad_output, dtype=self.compute_dtype)
        dtype = grad_output.dtype
        grad_cols_shape = (n, self.out_channels * kh * kw, x_flat.shape[2])
        grad_cols_buf = self._ws.get("grad_cols", grad_cols_shape, dtype)
        grad_padded = (
            self._ws.zeros(
                "grad_padded",
                (n, self.out_channels, out_h + 2 * self.padding, out_w + 2 * self.padding),
                dtype,
            )
            if self.padding > 0
            else None
        )
        grad_cols = im2col(
            grad_output,
            kh,
            kw,
            self.stride,
            self.padding,
            dilation=1,
            out=grad_cols_buf,
            padded_out=grad_padded,
        )

        weight_matrix = self.weight.data.reshape(self.in_channels, -1)
        stage = self._ws.get("grad_weight_stage", (n,) + weight_matrix.shape, dtype)
        grad_weight = grad_weight_gemm(x_flat, grad_cols, stage=stage)
        self.weight.grad += grad_weight.reshape(self.weight.data.shape)
        if self.use_bias:
            self.bias.grad += grad_output.sum(axis=(0, 2, 3))

        grad_input_flat = np.matmul(weight_matrix, grad_cols)
        # Recover the original spatial size from the cached flat input.
        total = x_flat.shape[2]
        in_h = self._input_height(out_h)
        in_w = total // in_h
        grad_input = grad_input_flat.reshape(n, self.in_channels, in_h, in_w)
        return grad_input

    def _input_height(self, out_h: int) -> int:
        kh, _ = self.kernel_size
        return (out_h + 2 * self.padding - kh - self.output_padding) // self.stride + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConvTranspose2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding})"
        )
