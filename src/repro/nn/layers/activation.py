"""Element-wise activation layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.functional import sigmoid
from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit: ``max(x, 0)``."""

    def __init__(self):
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.compute_dtype)
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("ReLU.backward called before forward")
        return np.where(self._mask, grad_output, 0.0)


class LeakyReLU(Module):
    """Leaky rectified linear unit with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        if negative_slope < 0:
            raise ValueError(f"negative_slope must be non-negative, got {negative_slope}")
        self.negative_slope = float(negative_slope)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.compute_dtype)
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("LeakyReLU.backward called before forward")
        return np.where(self._mask, grad_output, self.negative_slope * grad_output)


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def __init__(self):
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = sigmoid(np.asarray(x, dtype=self.compute_dtype))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("Sigmoid.backward called before forward")
        return grad_output * self._output * (1.0 - self._output)


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def __init__(self):
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(np.asarray(x, dtype=self.compute_dtype))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("Tanh.backward called before forward")
        return grad_output * (1.0 - self._output**2)
