"""Dense (fully-connected) layer and flattening helper."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter


class Linear(Module):
    """Affine transform ``y = x W^T + b`` over the last axis."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), rng), name="weight"
        )
        self.use_bias = bool(bias)
        if self.use_bias:
            self.bias = Parameter(init.uniform_bias((out_features,), in_features, rng), name="bias")
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.compute_dtype)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Linear expected last dimension {self.in_features}, got input shape {x.shape}"
            )
        self._input = x
        out = x @ self.weight.data.T
        if self.use_bias:
            out += self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("Linear.backward called before forward")
        grad_output = np.asarray(grad_output, dtype=self.compute_dtype)
        flat_grad = grad_output.reshape(-1, self.out_features)
        flat_input = self._input.reshape(-1, self.in_features)
        self.weight.grad += flat_grad.T @ flat_input
        if self.use_bias:
            self.bias.grad += flat_grad.sum(axis=0)
        return (grad_output @ self.weight.data).reshape(self._input.shape)


class Flatten(Module):
    """Flattens all dimensions after the batch dimension."""

    def __init__(self):
        super().__init__()
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.compute_dtype)
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("Flatten.backward called before forward")
        return np.asarray(grad_output, dtype=self.compute_dtype).reshape(self._input_shape)
