"""Loss functions.

Each loss exposes ``forward(prediction, target) -> float`` and ``backward() ->
gradient w.r.t. prediction``.  The paper's local objective (Equation 1) is a
squared error over the predicted hotspot map; binary cross-entropy variants
are provided as well because they are the conventional choice for hotspot
classification heads.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.functional import log_sigmoid, sigmoid
from repro.nn.workspace import Workspace


def _as_float_pair(prediction: np.ndarray, target: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Cast ``(prediction, target)`` into the loss's compute dtype.

    Losses follow the *prediction's* dtype: a float32 model produces float32
    scores and the loss (and its gradient) stays float32; anything else —
    the historical behavior included — runs in float64.
    """
    prediction = np.asarray(prediction)
    if prediction.dtype not in (np.float32, np.float64):
        prediction = prediction.astype(np.float64)
    target = np.asarray(target, dtype=prediction.dtype)
    return prediction, target


class Loss:
    """Base class for losses with cached backward pass."""

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> float:
        return self.forward(prediction, target)

    @staticmethod
    def _validate(prediction: np.ndarray, target: np.ndarray) -> None:
        if prediction.shape != target.shape:
            raise ValueError(
                f"prediction shape {prediction.shape} does not match target shape {target.shape}"
            )


class MSELoss(Loss):
    """Mean squared error, the paper's per-sample training objective.

    The residual and its square are staged in a persistent workspace (the
    batch shape is fixed across a run), so a training step allocates no loss
    temporaries; the returned gradient is always a fresh array.
    """

    def __init__(self):
        self._cache: Optional[tuple] = None
        self._ws = Workspace()

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction, target = _as_float_pair(prediction, target)
        self._validate(prediction, target)
        diff = self._ws.get("diff", prediction.shape, prediction.dtype)
        if diff is None:
            diff = prediction - target
        else:
            np.subtract(prediction, target, out=diff)
        self._cache = (diff,)
        square = self._ws.get("square", prediction.shape, prediction.dtype)
        if square is None:
            return float(np.mean(diff**2))
        # diff**2 with the integer exponent lowers to diff * diff, so the
        # staged form is bit-identical to the expression form.
        np.multiply(diff, diff, out=square)
        return float(np.mean(square))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("MSELoss.backward called before forward")
        (diff,) = self._cache
        return 2.0 * diff / diff.size


class BCELoss(Loss):
    """Binary cross-entropy on probabilities (inputs clipped for stability)."""

    def __init__(self, eps: float = 1e-7):
        self.eps = float(eps)
        self._cache: Optional[tuple] = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction, target = _as_float_pair(prediction, target)
        self._validate(prediction, target)
        clipped = np.clip(prediction, self.eps, 1.0 - self.eps)
        self._cache = (clipped, target)
        loss = -(target * np.log(clipped) + (1.0 - target) * np.log(1.0 - clipped))
        return float(np.mean(loss))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("BCELoss.backward called before forward")
        clipped, target = self._cache
        grad = (clipped - target) / (clipped * (1.0 - clipped))
        return grad / clipped.size


class BCEWithLogitsLoss(Loss):
    """Numerically stable binary cross-entropy on raw logits.

    Supports an optional positive-class weight, useful because DRC hotspots
    are a heavily imbalanced label (hotspot cells are rare).
    """

    def __init__(self, pos_weight: Optional[float] = None):
        if pos_weight is not None and pos_weight <= 0:
            raise ValueError(f"pos_weight must be positive, got {pos_weight}")
        self.pos_weight = None if pos_weight is None else float(pos_weight)
        self._cache: Optional[tuple] = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        logits, target = _as_float_pair(prediction, target)
        self._validate(logits, target)
        log_p = log_sigmoid(logits)
        log_not_p = log_sigmoid(-logits)
        if self.pos_weight is None:
            loss = -(target * log_p + (1.0 - target) * log_not_p)
        else:
            loss = -(self.pos_weight * target * log_p + (1.0 - target) * log_not_p)
        self._cache = (logits, target)
        return float(np.mean(loss))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("BCEWithLogitsLoss.backward called before forward")
        logits, target = self._cache
        probs = sigmoid(logits)
        if self.pos_weight is None:
            grad = probs - target
        else:
            grad = (1.0 - target) * probs - self.pos_weight * target * (1.0 - probs)
        return grad / logits.size


class FocalLoss(Loss):
    """Focal loss on raw logits (Lin et al.), for heavily imbalanced hotspot maps.

    ``gamma`` down-weights easy examples; ``alpha`` is the weight of the
    positive class (``1 - alpha`` for the negative class).  ``gamma = 0`` and
    ``alpha = 0.5`` recovers half the plain binary cross-entropy.
    """

    def __init__(self, gamma: float = 2.0, alpha: float = 0.25):
        if gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {gamma}")
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.gamma = float(gamma)
        self.alpha = float(alpha)
        self._cache: Optional[tuple] = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        logits, target = _as_float_pair(prediction, target)
        self._validate(logits, target)
        probs = sigmoid(logits)
        # p_t is the model's probability of the true class.
        p_t = target * probs + (1.0 - target) * (1.0 - probs)
        alpha_t = target * self.alpha + (1.0 - target) * (1.0 - self.alpha)
        log_p_t = target * log_sigmoid(logits) + (1.0 - target) * log_sigmoid(-logits)
        loss = -alpha_t * (1.0 - p_t) ** self.gamma * log_p_t
        self._cache = (probs, target, p_t, alpha_t, log_p_t)
        return float(np.mean(loss))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("FocalLoss.backward called before forward")
        probs, target, p_t, alpha_t, log_p_t = self._cache
        # d p_t / d logits = (2 * target - 1) * p * (1 - p)
        dpt_dlogit = (2.0 * target - 1.0) * probs * (1.0 - probs)
        focal = (1.0 - p_t) ** self.gamma
        # loss = -alpha_t * (1 - p_t)^gamma * log(p_t)
        dloss_dpt = -alpha_t * (
            -self.gamma * (1.0 - p_t) ** (self.gamma - 1.0) * log_p_t + focal / np.clip(p_t, 1e-12, None)
        )
        grad = dloss_dpt * dpt_dlogit
        return grad / probs.size


class DiceLoss(Loss):
    """Soft Dice loss on probabilities — an overlap objective for hotspot maps.

    ``1 - 2 |P ∩ Y| / (|P| + |Y|)`` with a smoothing constant; useful when the
    positive class is rare because the loss is scale-free in the class ratio.
    """

    def __init__(self, smooth: float = 1.0):
        if smooth <= 0:
            raise ValueError(f"smooth must be positive, got {smooth}")
        self.smooth = float(smooth)
        self._cache: Optional[tuple] = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        probs, target = _as_float_pair(prediction, target)
        self._validate(probs, target)
        intersection = float((probs * target).sum())
        denominator = float(probs.sum() + target.sum())
        dice = (2.0 * intersection + self.smooth) / (denominator + self.smooth)
        self._cache = (probs, target, intersection, denominator)
        return float(1.0 - dice)

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("DiceLoss.backward called before forward")
        probs, target, intersection, denominator = self._cache
        numerator = 2.0 * intersection + self.smooth
        denom = denominator + self.smooth
        # d dice / d p_i = (2 * y_i * denom - numerator) / denom^2
        ddice_dp = (2.0 * target * denom - numerator) / denom**2
        return -ddice_dp


class WeightedMSELoss(Loss):
    """MSE with a per-class weight, emphasizing the rare hotspot pixels.

    The paper's objective is plain MSE; this variant keeps the squared-error
    form (so FedProx's analysis still applies) while letting clients with
    extremely sparse hotspot maps up-weight the positive bins.
    """

    def __init__(self, pos_weight: float = 1.0):
        if pos_weight <= 0:
            raise ValueError(f"pos_weight must be positive, got {pos_weight}")
        self.pos_weight = float(pos_weight)
        self._cache: Optional[tuple] = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction, target = _as_float_pair(prediction, target)
        self._validate(prediction, target)
        weights = np.where(target > 0.5, self.pos_weight, 1.0)
        diff = prediction - target
        self._cache = (diff, weights)
        return float(np.mean(weights * diff**2))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("WeightedMSELoss.backward called before forward")
        diff, weights = self._cache
        return 2.0 * weights * diff / diff.size


def make_loss(name: str, **kwargs) -> Loss:
    """Factory mapping configuration strings to loss instances."""
    registry = {
        "mse": MSELoss,
        "bce": BCELoss,
        "bce_logits": BCEWithLogitsLoss,
        "focal": FocalLoss,
        "dice": DiceLoss,
        "weighted_mse": WeightedMSELoss,
    }
    if name not in registry:
        raise ValueError(f"unknown loss {name!r}; expected one of {sorted(registry)}")
    return registry[name](**kwargs)
