"""Fused and optionally-compiled convolution kernels.

This module holds the compute-saturation kernel layer that sits underneath
:mod:`repro.nn.functional` and the conv layers:

* :func:`fused_col2im` — col2im fused with the unpad slice.  The reference
  path (``functional.col2im``) accumulates taps into a zero-initialized
  **padded** buffer ``(n, c, h+2p, w+2p)`` and then slices the interior,
  paying an allocation + zero-fill of the border and a full interior copy
  per call.  The fused kernel scatters each kernel tap **directly into the
  unpadded output** by clipping the tap's output-pixel range to the rows and
  columns that survive the unpad slice.  Contributions that the reference
  discards are exactly the ones the clipped ranges skip, and surviving
  contributions are applied in the same ascending ``(ki, kj)`` tap order, so
  for every destination cell the IEEE addition sequence is unchanged —
  **bit-identical by construction**, for both dtypes.
* :func:`grad_weight_gemm` — the weight-gradient contraction
  ``sum_i grad[i] @ cols[i].T``.  When the batch is a single image the
  batched-matmul-plus-reduction collapses to one plain 2-D GEMM over the
  same operands (the "where shapes permit" fusion), skipping the
  ``sum(axis=0)`` pass entirely.
* Optional **numba** kernels for the im2col gather and the per-tap scatter,
  compiled lazily on first use when :mod:`numba` is importable and silently
  absent otherwise (this container does not ship numba; the pure-NumPy
  kernels above are the production path there).  The compiled loop nests
  visit elements in exactly the order of their NumPy equivalents, so they
  are held to the same bit-identity bar by ``tests/nn/test_kernels.py``.

Everything is gated by :func:`compiled_kernels_disabled`, a parity flag in
the exact mold of :func:`repro.nn.workspace.workspaces_disabled`: disabling
it restores the PR 5/6 tap-accumulation engine, and disabling **both** flags
restores the pre-PR-5 bincount path.

Why the two backward GEMMs are *not* one batched matmul
-------------------------------------------------------
``Conv2d.backward`` runs two GEMMs per step: ``grad_weight``
(``(n,O,L) @ (n,L,CK)`` summed over the batch — contracts over ``L``) and
``grad_cols`` (``(CK,O) @ (n,O,L)`` broadcast over the batch — contracts
over ``O``).  Because the two contract over *different* axes, no stacking
of operands turns them into a single batched matmul: every arrangement
either disagrees on shapes or requires zero-padding one operand, and
padding changes the GEMM's reduction tree, which breaks float64
bit-identity (measured: flattened single-GEMM reformulations of even one
of these products drift in the last ulp on some shapes under OpenBLAS).
The fusions kept here are exactly the ones that preserve the IEEE
operation sequence; the rest of the multi-core win comes from BLAS-thread
scheduling (:mod:`repro.utils.threadpools`), not from reassociating math.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Tuple

import numpy as np

_ENABLED = True


def compiled_kernels_enabled() -> bool:
    """Whether the fused/compiled kernel paths are active (the default)."""
    return _ENABLED


@contextmanager
def compiled_kernels_disabled():
    """Run with the unfused reference kernels (the PR 5/6 engine) for parity tests."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


# -- optional numba backend ------------------------------------------------------
#
# numba is an optional accelerator, never a dependency: when it is not
# importable (this container), the pure-NumPy kernels below are the real
# path and nothing changes.  When it is importable, the jitted loop nests
# replace the NumPy expressions on first use; a compile failure downgrades
# back to NumPy permanently for the process.

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba  # type: ignore

    HAVE_NUMBA = True
except ImportError:
    _numba = None
    HAVE_NUMBA = False

_NUMBA_SCATTER = None
_NUMBA_GATHER = None
_NUMBA_BROKEN = False


def kernel_backend() -> str:
    """``"numba"`` when the compiled kernels are available, else ``"numpy"``."""
    if _ENABLED and HAVE_NUMBA and not _NUMBA_BROKEN:
        return "numba"
    return "numpy"


def _build_numba_kernels():  # pragma: no cover - requires numba
    """Compile the gather/scatter loop nests (lazy, once per process)."""
    global _NUMBA_SCATTER, _NUMBA_GATHER, _NUMBA_BROKEN
    if _NUMBA_SCATTER is not None or _NUMBA_BROKEN:
        return
    try:
        njit = _numba.njit

        @njit(cache=True)
        def scatter_taps(taps, out, stride, padding, dilation):
            # taps: (n, c, kh, kw, out_h, out_w); out: (n, c, h, w), pre-zeroed.
            # Ascending (ki, kj) tap order — the reference accumulation order.
            n, c, kernel_h, kernel_w, out_h, out_w = taps.shape
            h, w = out.shape[2], out.shape[3]
            for ki in range(kernel_h):
                row_offset = ki * dilation - padding
                row_lo = 0 if row_offset >= 0 else (-row_offset + stride - 1) // stride
                row_hi = (h - 1 - row_offset) // stride + 1
                if row_hi > out_h:
                    row_hi = out_h
                if row_lo >= row_hi:
                    continue
                for kj in range(kernel_w):
                    col_offset = kj * dilation - padding
                    col_lo = 0 if col_offset >= 0 else (-col_offset + stride - 1) // stride
                    col_hi = (w - 1 - col_offset) // stride + 1
                    if col_hi > out_w:
                        col_hi = out_w
                    if col_lo >= col_hi:
                        continue
                    for image in range(n):
                        for channel in range(c):
                            for oy in range(row_lo, row_hi):
                                row = row_offset + stride * oy
                                for ox in range(col_lo, col_hi):
                                    out[image, channel, row, col_offset + stride * ox] += taps[
                                        image, channel, ki, kj, oy, ox
                                    ]

        @njit(cache=True)
        def gather_cols(flat_x, flat_index, out):
            # flat_x: (n, c*hp*wp); flat_index: (m,); out: (n, m).  A plain
            # gather — the compiled twin of the np.take im2col fast path.
            for image in range(flat_x.shape[0]):
                for j in range(flat_index.shape[0]):
                    out[image, j] = flat_x[image, flat_index[j]]

        _NUMBA_SCATTER = scatter_taps
        _NUMBA_GATHER = gather_cols
    except Exception:
        _NUMBA_BROKEN = True


def _tap_range(offset: int, stride: int, size: int, out_size: int) -> Tuple[int, int]:
    """Output-pixel range ``[lo, hi)`` of one kernel tap that lands inside
    an unpadded axis of length ``size``.

    A tap at kernel position ``k`` writes destination index
    ``offset + stride * o`` (``offset = k * dilation - padding``) for output
    pixel ``o``; the range keeps exactly the ``o`` with destination in
    ``[0, size)`` — the contributions the reference path's unpad slice
    retains.
    """
    if offset >= 0:
        lo = 0
    else:
        lo = (-offset + stride - 1) // stride
    hi = min(out_size, (size - 1 - offset) // stride + 1)
    return lo, hi


def fused_col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    out_h: int,
    out_w: int,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> np.ndarray:
    """col2im fused with the unpad slice: scatter taps straight into ``x_shape``.

    Bit-identical to the reference pad-accumulate-slice path for every dtype
    (see the module docstring for the argument); the win is skipping the
    padded temporary's allocation + border zero-fill and the interior copy —
    for the paper's 9x9/padding-4 layers the padded buffer is ~19% larger
    than the output it is sliced down to, freed and refilled every step.
    """
    n, c, h, w = x_shape
    out = np.zeros((n, c, h, w), dtype=cols.dtype)
    taps = cols.reshape(n, c, kernel_h, kernel_w, out_h, out_w)
    if HAVE_NUMBA and not _NUMBA_BROKEN:  # pragma: no cover - requires numba
        _build_numba_kernels()
        if _NUMBA_SCATTER is not None:
            _NUMBA_SCATTER(
                np.ascontiguousarray(taps), out, int(stride), int(padding), int(dilation)
            )
            return out
    for ki in range(kernel_h):
        row_offset = ki * dilation - padding
        row_lo, row_hi = _tap_range(row_offset, stride, h, out_h)
        if row_lo >= row_hi:
            continue
        row_start = row_offset + stride * row_lo
        row_stop = row_offset + stride * (row_hi - 1) + 1
        for kj in range(kernel_w):
            col_offset = kj * dilation - padding
            col_lo, col_hi = _tap_range(col_offset, stride, w, out_w)
            if col_lo >= col_hi:
                continue
            col_start = col_offset + stride * col_lo
            col_stop = col_offset + stride * (col_hi - 1) + 1
            out[
                :,
                :,
                row_start:row_stop:stride,
                col_start:col_stop:stride,
            ] += taps[:, :, ki, kj, row_lo:row_hi, col_lo:col_hi]
    return out


def gather_into(flat_x: np.ndarray, flat_index: np.ndarray, out: np.ndarray) -> np.ndarray:
    """The im2col gather ``out[i, j] = flat_x[i, flat_index[j]]``.

    Dispatches to the compiled numba gather when available, else to the
    ``np.take`` fast path (``mode="clip"`` selects the unbuffered
    write-through branch; the memoized indices are in range by
    construction).  Pure gathers are trivially bit-identical across
    backends.
    """
    if (
        _ENABLED and HAVE_NUMBA and not _NUMBA_BROKEN
    ):  # pragma: no cover - requires numba
        _build_numba_kernels()
        if _NUMBA_GATHER is not None:
            _NUMBA_GATHER(flat_x, flat_index, out)
            return out
    np.take(flat_x, flat_index, axis=1, out=out, mode="clip")
    return out


def grad_weight_gemm(
    grad_flat: np.ndarray, cols: np.ndarray, stage: Optional[np.ndarray] = None
) -> np.ndarray:
    """The conv weight-gradient contraction ``sum_i grad_flat[i] @ cols[i].T``.

    Reference form: one batched matmul into ``stage`` followed by a
    ``sum(axis=0)`` reduction pass.  When the batch holds a single image
    the reduction is the identity and the whole thing collapses to one 2-D
    GEMM over the same operands — same BLAS call, same IEEE sequence, no
    reduction pass (bit-identity asserted by the parity suite).  Larger
    batches keep the reference form: collapsing them would reassociate the
    per-image partial sums, which is exactly the reordering that breaks
    float64 bit-identity (module docstring).

    ``stage`` is the optional ``(n, rows, cols)`` workspace staging buffer;
    the returned array may alias it and must be consumed before the owning
    layer's next step (the standard workspace contract).
    """
    if _ENABLED and grad_flat.shape[0] == 1:
        if stage is not None:
            return np.matmul(grad_flat[0], cols[0].transpose(), out=stage[0])
        return np.matmul(grad_flat[0], cols[0].transpose())
    if stage is not None:
        np.matmul(grad_flat, cols.transpose(0, 2, 1), out=stage)
        return stage.sum(axis=0)
    return np.matmul(grad_flat, cols.transpose(0, 2, 1)).sum(axis=0)
