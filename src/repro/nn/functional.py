"""Low-level tensor operations shared by the convolutional layers.

The implementation follows the classic im2col / col2im formulation: a
convolution is lowered to one large matrix multiplication per batch, which is
the only way to get acceptable throughput out of NumPy.  All functions work on
``NCHW`` tensors and support stride, symmetric zero padding, and dilation.

The im2col/col2im gather indices depend only on the layer geometry and the
input spatial shape — both fixed across a training run — so they are built
once and memoized (:func:`_im2col_indices`, :func:`_col2im_flat_index`,
:func:`_col2im_batch_index`) instead of being recomputed on every
forward/backward call.  Cached arrays are marked read-only; they are only
ever used as gather/scatter indices.

Workspace fast path
-------------------
:func:`im2col` accepts ``out=`` / ``padded_out=`` buffers (persistent
per-layer workspaces, see :mod:`repro.nn.workspace`): the patch gather then
runs as one ``np.take`` straight into the reused buffer (``mode="clip"``
selects NumPy's unbuffered write-through path; the memoized indices are
always in range, so clipping never engages) and padding becomes an interior
copy into a border-zeroed buffer instead of a fresh ``np.pad`` allocation.
Both paths gather exactly the same elements — results are bit-identical —
the workspace path just stops paying an allocation + page-fault per call.

Dtype rules
-----------
Everything here is dtype-preserving: float32 inputs produce float32
outputs (the compute-dtype fast path), float64 stays float64 bit for bit.
:func:`col2im` accumulates in the columns' own dtype on the engine path
(bit-identical to the historical float64 bincount for float64 inputs — the
per-cell addition order is the same; see its docstring) and falls back to
the float64 bincount scatter when workspaces are disabled.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from repro.nn.kernels import compiled_kernels_enabled, fused_col2im, gather_into
from repro.nn.workspace import workspaces_enabled


def conv_output_size(size: int, kernel: int, stride: int, padding: int, dilation: int = 1) -> int:
    """Spatial output size of a convolution along one axis."""
    effective = dilation * (kernel - 1) + 1
    out = (size + 2 * padding - effective) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size {out} "
            f"(input={size}, kernel={kernel}, stride={stride}, padding={padding}, dilation={dilation})"
        )
    return out


def conv_transpose_output_size(
    size: int, kernel: int, stride: int, padding: int, output_padding: int = 0
) -> int:
    """Spatial output size of a transposed convolution along one axis."""
    out = (size - 1) * stride - 2 * padding + kernel + output_padding
    if out <= 0:
        raise ValueError(
            f"transposed convolution produces non-positive output size {out} "
            f"(input={size}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


@lru_cache(maxsize=256)
def _im2col_indices(
    channels: int,
    kernel_h: int,
    kernel_w: int,
    out_h: int,
    out_w: int,
    stride: int,
    dilation: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Index arrays mapping (channel*kh*kw, out_h*out_w) patch entries to the padded input.

    Memoized on the full geometry key (the output spatial shape stands in
    for the input shape, which determines it): a training run hits the same
    few keys on every forward/backward call, so the index construction runs
    once per distinct layer/input-shape pair.  The cached arrays are
    read-only.
    """
    i0 = np.repeat(np.arange(kernel_h) * dilation, kernel_w)
    i0 = np.tile(i0, channels)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel_w) * dilation, kernel_h * channels)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kernel_h * kernel_w).reshape(-1, 1)
    for index in (k, i, j):
        index.setflags(write=False)
    return k, i, j


@lru_cache(maxsize=256)
def _col2im_flat_index(
    channels: int,
    kernel_h: int,
    kernel_w: int,
    out_h: int,
    out_w: int,
    stride: int,
    dilation: int,
    h_padded: int,
    w_padded: int,
) -> np.ndarray:
    """Flattened per-image gather/scatter indices into ``(c, h_padded, w_padded)``.

    Used both as :func:`col2im`'s scatter target and as :func:`im2col`'s
    flat gather source (the two operations are adjoint, so the index map is
    the same).  Memoized; read-only.
    """
    k, i, j = _im2col_indices(channels, kernel_h, kernel_w, out_h, out_w, stride, dilation)
    base_index = (k * h_padded + i) * w_padded + j  # (c*kh*kw, out_h*out_w)
    base_index.setflags(write=False)
    return base_index


def im2col(
    x: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
    out: Optional[np.ndarray] = None,
    padded_out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Unfold sliding patches of ``x`` into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    out:
        Optional persistent destination of shape
        ``(N, C * kernel_h * kernel_w, out_h * out_w)`` and ``x``'s dtype;
        the gather then writes straight into it (no fresh allocation) and
        returns it.
    padded_out:
        Optional persistent padded-input buffer of shape
        ``(N, C, H + 2 * padding, W + 2 * padding)`` whose border is
        already zero (see :meth:`repro.nn.workspace.Workspace.zeros`); the
        interior is overwritten with ``x`` each call instead of building a
        fresh ``np.pad`` copy.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(N, C * kernel_h * kernel_w, out_h * out_w)``.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, padding, dilation)
    out_w = conv_output_size(w, kernel_w, stride, padding, dilation)
    if padding > 0:
        if padded_out is not None:
            # The buffer's border is zero by contract and only the interior
            # is ever written, so this is equivalent to np.pad, minus the
            # allocation.
            padded_out[:, :, padding : padding + h, padding : padding + w] = x
            x = padded_out
        else:
            x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant")
    if out is not None and x.flags.c_contiguous:
        flat_index = _col2im_flat_index(
            c, kernel_h, kernel_w, out_h, out_w, stride, dilation, h + 2 * padding, w + 2 * padding
        )
        # One flat gather straight into the reused buffer (compiled when
        # numba is available, else np.take's unbuffered mode="clip" path;
        # the memoized indices are in range by construction).
        gather_into(x.reshape(n, -1), flat_index.reshape(-1), out.reshape(n, -1))
        return out
    k, i, j = _im2col_indices(c, kernel_h, kernel_w, out_h, out_w, stride, dilation)
    cols = x[:, k, i, j]
    if out is not None:
        np.copyto(out, cols)
        return out
    return cols


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> np.ndarray:
    """Fold columns back into an image, accumulating overlapping patches.

    This is the adjoint of :func:`im2col`; it is used both for convolution
    backward passes and for the forward pass of transposed convolutions.
    The result has ``cols``'s dtype and is always freshly allocated (it is
    a layer's returned value, never workspace scratch).

    Three equivalent accumulation engines, selected by the parity flags:

    * **Fused clipped scatter** (the default): col2im fused with the unpad
      slice — each tap lands directly in the unpadded result over the
      clipped output range the slice would keep (see
      :func:`repro.nn.kernels.fused_col2im`; compiled via numba where
      available).  Same per-cell addition order as tap accumulation, so
      bit-identical, without the padded temporary.
    * **Tap accumulation** (under
      :func:`repro.nn.kernels.compiled_kernels_disabled`, the PR 5/6
      engine): one vectorized ``+=`` per kernel
      position into strided slices of the padded image.  For every output
      cell the contributions arrive in ascending ``(ki, kj)`` order —
      exactly the order the flattened-bincount scatter visits them — so for
      a given dtype the result is **bit-identical** to the historical
      bincount path (asserted by ``tests/nn``); float32 columns accumulate
      natively in float32, which is where the fast path's bandwidth win
      comes from.
    * **Flattened bincount** (the pre-engine path, float64 accumulation),
      kept under :func:`repro.nn.workspace.workspaces_disabled` as the
      reproducible baseline.
    """
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel_h, stride, padding, dilation)
    out_w = conv_output_size(w, kernel_w, stride, padding, dilation)
    expected = (n, c * kernel_h * kernel_w, out_h * out_w)
    if cols.shape != expected:
        raise ValueError(f"col2im expected columns of shape {expected}, got {cols.shape}")
    h_padded, w_padded = h + 2 * padding, w + 2 * padding
    if workspaces_enabled() and compiled_kernels_enabled():
        # Fused engine: scatter each tap directly into the unpadded result,
        # clipping tap ranges to the rows/columns the unpad slice would
        # keep.  Same per-cell addition order as the padded tap path below,
        # so bit-identical — minus the padded temporary and interior copy.
        return fused_col2im(
            cols, x_shape, kernel_h, kernel_w, out_h, out_w, stride, padding, dilation
        )
    if workspaces_enabled():
        padded = np.zeros((n, c, h_padded, w_padded), dtype=cols.dtype)
        taps = cols.reshape(n, c, kernel_h, kernel_w, out_h, out_w)
        for ki in range(kernel_h):
            row = ki * dilation
            for kj in range(kernel_w):
                col = kj * dilation
                padded[
                    :,
                    :,
                    row : row + stride * out_h : stride,
                    col : col + stride * out_w : stride,
                ] += taps[:, :, ki, kj]
    else:
        # Scatter-add via bincount over flattened indices: the historical
        # engine (always accumulates in float64, then casts).
        per_image = c * h_padded * w_padded
        base_index = _col2im_flat_index(
            c, kernel_h, kernel_w, out_h, out_w, stride, dilation, h_padded, w_padded
        )
        offsets = np.arange(n) * per_image
        flat_index = (offsets[:, None, None] + base_index[None, :, :]).ravel()
        flat = np.bincount(flat_index, weights=cols.ravel(), minlength=n * per_image)
        if flat.dtype != cols.dtype:
            flat = flat.astype(cols.dtype)
        padded = flat.reshape(n, c, h_padded, w_padded)
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid (dtype-preserving for floats)."""
    x = np.asarray(x)
    dtype = x.dtype if x.dtype in (np.float32, np.float64) else np.float64
    out = np.empty_like(x, dtype=dtype)
    positive = x >= 0
    negative = ~positive
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[negative])
    out[negative] = exp_x / (1.0 + exp_x)
    return out


def log_sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(sigmoid(x))`` (dtype-preserving for floats)."""
    return np.where(x >= 0, -np.log1p(np.exp(-np.abs(x))), x - np.log1p(np.exp(-np.abs(x))))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis`` (dtype-preserving)."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)
