"""Low-level tensor operations shared by the convolutional layers.

The implementation follows the classic im2col / col2im formulation: a
convolution is lowered to one large matrix multiplication per batch, which is
the only way to get acceptable throughput out of NumPy.  All functions work on
``NCHW`` tensors and support stride, symmetric zero padding, and dilation.

The im2col/col2im gather indices depend only on the layer geometry and the
input spatial shape — both fixed across a training run — so they are built
once and memoized (:func:`_im2col_indices`, :func:`_col2im_flat_index`)
instead of being recomputed on every forward/backward call.  Cached arrays
are marked read-only; they are only ever used as gather/scatter indices.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, padding: int, dilation: int = 1) -> int:
    """Spatial output size of a convolution along one axis."""
    effective = dilation * (kernel - 1) + 1
    out = (size + 2 * padding - effective) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size {out} "
            f"(input={size}, kernel={kernel}, stride={stride}, padding={padding}, dilation={dilation})"
        )
    return out


def conv_transpose_output_size(
    size: int, kernel: int, stride: int, padding: int, output_padding: int = 0
) -> int:
    """Spatial output size of a transposed convolution along one axis."""
    out = (size - 1) * stride - 2 * padding + kernel + output_padding
    if out <= 0:
        raise ValueError(
            f"transposed convolution produces non-positive output size {out} "
            f"(input={size}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


@lru_cache(maxsize=256)
def _im2col_indices(
    channels: int,
    kernel_h: int,
    kernel_w: int,
    out_h: int,
    out_w: int,
    stride: int,
    dilation: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Index arrays mapping (channel*kh*kw, out_h*out_w) patch entries to the padded input.

    Memoized on the full geometry key (the output spatial shape stands in
    for the input shape, which determines it): a training run hits the same
    few keys on every forward/backward call, so the index construction runs
    once per distinct layer/input-shape pair.  The cached arrays are
    read-only.
    """
    i0 = np.repeat(np.arange(kernel_h) * dilation, kernel_w)
    i0 = np.tile(i0, channels)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel_w) * dilation, kernel_h * channels)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kernel_h * kernel_w).reshape(-1, 1)
    for index in (k, i, j):
        index.setflags(write=False)
    return k, i, j


@lru_cache(maxsize=256)
def _col2im_flat_index(
    channels: int,
    kernel_h: int,
    kernel_w: int,
    out_h: int,
    out_w: int,
    stride: int,
    dilation: int,
    h_padded: int,
    w_padded: int,
) -> np.ndarray:
    """Flattened per-image scatter indices used by :func:`col2im` (memoized)."""
    k, i, j = _im2col_indices(channels, kernel_h, kernel_w, out_h, out_w, stride, dilation)
    base_index = (k * h_padded + i) * w_padded + j  # (c*kh*kw, out_h*out_w)
    base_index.setflags(write=False)
    return base_index


def im2col(
    x: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> np.ndarray:
    """Unfold sliding patches of ``x`` into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(N, C * kernel_h * kernel_w, out_h * out_w)``.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, padding, dilation)
    out_w = conv_output_size(w, kernel_w, stride, padding, dilation)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant")
    k, i, j = _im2col_indices(c, kernel_h, kernel_w, out_h, out_w, stride, dilation)
    cols = x[:, k, i, j]
    return cols


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> np.ndarray:
    """Fold columns back into an image, accumulating overlapping patches.

    This is the adjoint of :func:`im2col`; it is used both for convolution
    backward passes and for the forward pass of transposed convolutions.
    """
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel_h, stride, padding, dilation)
    out_w = conv_output_size(w, kernel_w, stride, padding, dilation)
    expected = (n, c * kernel_h * kernel_w, out_h * out_w)
    if cols.shape != expected:
        raise ValueError(f"col2im expected columns of shape {expected}, got {cols.shape}")
    h_padded, w_padded = h + 2 * padding, w + 2 * padding
    # Scatter-add via bincount over flattened indices: orders of magnitude
    # faster than np.add.at for the large index arrays convolutions produce.
    per_image = c * h_padded * w_padded
    base_index = _col2im_flat_index(
        c, kernel_h, kernel_w, out_h, out_w, stride, dilation, h_padded, w_padded
    )
    offsets = np.arange(n) * per_image
    flat_index = (offsets[:, None, None] + base_index[None, :, :]).ravel()
    flat = np.bincount(flat_index, weights=cols.ravel(), minlength=n * per_image)
    x_padded = flat.reshape(n, c, h_padded, w_padded)
    if padding > 0:
        return x_padded[:, :, padding:-padding, padding:-padding]
    return x_padded


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    negative = ~positive
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[negative])
    out[negative] = exp_x / (1.0 + exp_x)
    return out


def log_sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(sigmoid(x))``."""
    return np.where(x >= 0, -np.log1p(np.exp(-np.abs(x))), x - np.log1p(np.exp(-np.abs(x))))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)
