"""Module base class and containers for the NumPy neural-network substrate.

The substrate uses explicit layer-wise backpropagation rather than a tape
based autograd: every :class:`Module` implements ``forward`` (caching what it
needs) and ``backward`` (consuming the cache, accumulating parameter
gradients, and returning the gradient with respect to its input).  This keeps
the implementation small, easy to audit, and fast enough in NumPy for the
model sizes used by the paper.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.dtypes import resolve_compute_dtype
from repro.nn.parameter import Parameter


class Module:
    """Base class for all neural-network layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; the base class intercepts those assignments and registers them
    so that ``parameters()``, ``state_dict()`` and friends can traverse the
    full hierarchy without any bookkeeping in the subclasses.

    Every module carries a **compute dtype** (default ``float64``): the
    floating dtype its forward/backward arithmetic runs in.
    :meth:`set_compute_dtype` switches the whole hierarchy — parameters,
    gradients, and buffers included — in place; the ``state_dict`` /
    ``load_state_dict`` boundary always speaks ``float64`` regardless (see
    :mod:`repro.nn.dtypes`).
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)
        object.__setattr__(self, "_compute_dtype", np.dtype(np.float64))

    # -- registration -----------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        """Explicitly register a parameter (equivalent to attribute assignment)."""
        self._parameters[name] = param
        object.__setattr__(self, name, param)
        return param

    def register_buffer(self, name: str, array: np.ndarray) -> np.ndarray:
        """Register a non-trainable persistent array (e.g. BatchNorm running stats)."""
        array = np.asarray(array, dtype=self.compute_dtype)
        self._buffers[name] = array
        object.__setattr__(self, name, array)
        return array

    def set_buffer(self, name: str, array: np.ndarray) -> None:
        """Replace a registered buffer's contents (keeps registration in sync).

        Contents are kept in the module's compute dtype, so a float32
        model's running statistics never creep back up to float64 (which
        would silently upcast every downstream activation).
        """
        if name not in self._buffers:
            raise KeyError(f"unknown buffer {name!r}")
        array = np.asarray(array, dtype=self.compute_dtype)
        self._buffers[name] = array
        object.__setattr__(self, name, array)

    def add_module(self, name: str, module: "Module") -> "Module":
        """Explicitly register a child module."""
        self._modules[name] = module
        object.__setattr__(self, name, module)
        return module

    # -- forward / backward ------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- traversal ----------------------------------------------------------
    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            full_name = f"{prefix}.{name}" if prefix else name
            yield full_name, param
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            full_name = f"{prefix}.{name}" if prefix else name
            yield full_name, buf
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_buffers(child_prefix)

    def buffers(self) -> List[np.ndarray]:
        return [buf for _, buf in self.named_buffers()]

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(param.size for param in self.parameters())

    # -- compute dtype --------------------------------------------------------
    @property
    def compute_dtype(self) -> np.dtype:
        """The floating dtype this module's arithmetic runs in."""
        return getattr(self, "_compute_dtype", np.dtype(np.float64))

    def set_compute_dtype(self, dtype) -> "Module":
        """Switch the whole hierarchy to ``dtype`` (float64 / float32), in place.

        Casts every parameter (with its gradient buffer) and every
        registered buffer, and drops any per-layer workspaces so scratch is
        re-grown in the new dtype.  A no-op when the hierarchy is already in
        ``dtype``, so callers may invoke it unconditionally on a hot path.
        """
        dtype = resolve_compute_dtype(dtype)
        for _, module in self.named_modules():
            if module.compute_dtype == dtype:
                continue
            object.__setattr__(module, "_compute_dtype", dtype)
            for param in module._parameters.values():
                param.to_dtype(dtype)
            for name in list(module._buffers):
                buffer = module._buffers[name]
                if buffer.dtype != dtype:
                    cast = buffer.astype(dtype)
                    module._buffers[name] = cast
                    object.__setattr__(module, name, cast)
            workspace = getattr(module, "_ws", None)
            if workspace is not None:
                workspace.clear()
        return self

    # -- training state ------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set the module (and all children) to training or evaluation mode."""
        object.__setattr__(self, "training", bool(mode))
        for child in self.children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        """Set the module (and all children) to evaluation mode."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Reset all parameter gradients to zero."""
        for param in self.parameters():
            param.zero_grad()

    # -- state dict -----------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat ``name -> array copy`` mapping of parameters and buffers.

        States are always ``float64``, whatever the module's compute dtype:
        everything that leaves the model — aggregation, wire codecs,
        checkpoints — speaks float64, and a float32 model casts up exactly
        once here (and back down once in :meth:`load_state_dict`).
        """
        state: Dict[str, np.ndarray] = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.astype(np.float64, copy=True)
        for name, buf in self.named_buffers():
            state[name] = np.array(buf, dtype=np.float64, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter and buffer values from a flat mapping."""
        own_params = dict(self.named_parameters())
        own_buffer_owners = self._buffer_owners()
        missing = []
        for name, param in own_params.items():
            if name in state:
                param.copy_(state[name])
            elif strict:
                missing.append(name)
        for name, (owner, local_name) in own_buffer_owners.items():
            if name in state:
                owner.set_buffer(local_name, state[name])
            elif strict:
                missing.append(name)
        unexpected = [key for key in state if key not in own_params and key not in own_buffer_owners]
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch: missing keys {missing}, unexpected keys {unexpected}"
            )

    def _buffer_owners(self, prefix: str = "") -> Dict[str, Tuple["Module", str]]:
        owners: Dict[str, Tuple[Module, str]] = {}
        for name in self._buffers:
            full_name = f"{prefix}.{name}" if prefix else name
            owners[full_name] = (self, name)
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            owners.update(child._buffer_owners(child_prefix))
        return owners

    # -- introspection ---------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        child_lines = [f"  ({name}): {child!r}" for name, child in self._modules.items()]
        body = "\n".join(child_lines)
        header = self.__class__.__name__
        return f"{header}(\n{body}\n)" if body else f"{header}()"


class Sequential(Module):
    """A container that chains modules in order.

    ``backward`` propagates gradients through the children in reverse order.
    """

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = str(index)
            self.add_module(name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = str(len(self._order))
        self.add_module(name, module)
        self._order.append(name)
        return self

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for name in self._order:
            x = self._modules[name](x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for name in reversed(self._order):
            grad_output = self._modules[name].backward(grad_output)
        return grad_output


class Identity(Module):
    """A no-op module, occasionally useful as a placeholder branch."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output
