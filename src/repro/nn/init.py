"""Weight-initialization schemes for the NumPy neural-network substrate."""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def _fan_in_fan_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in / fan-out for dense and convolutional weight shapes.

    Dense weights are ``(out_features, in_features)``; convolutional weights
    are ``(out_channels, in_channels, kh, kw)`` and transposed-convolution
    weights are ``(in_channels, out_channels, kh, kw)`` — for initialization
    purposes the distinction does not matter, only the receptive-field size.
    """
    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"unsupported weight shape for fan computation: {shape}")
    return fan_in, fan_out


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He/Kaiming uniform initialization (default gain for ReLU networks)."""
    fan_in, _ = _fan_in_fan_out(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He/Kaiming normal initialization."""
    fan_in, _ = _fan_in_fan_out(shape)
    std = gain / math.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def uniform_bias(shape: Tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """PyTorch-style bias initialization: uniform in ``±1/sqrt(fan_in)``."""
    bound = 1.0 / math.sqrt(max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zeros initialization."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-ones initialization."""
    return np.ones(shape, dtype=np.float64)
