"""Trainable parameters for the NumPy neural-network substrate."""

from __future__ import annotations

from typing import Optional

import numpy as np


class Parameter:
    """A trainable tensor with an associated gradient buffer.

    Attributes
    ----------
    data:
        The parameter values.  Parameters are born ``float64`` (matching
        initialization, states, and checkpoints); a model switched to the
        float32 compute dtype (:meth:`repro.nn.Module.set_compute_dtype`)
        carries them — and the matching ``grad`` buffers — as ``float32``
        for the duration of local training.
    grad:
        Accumulated gradient of the loss with respect to ``data``.  It is
        always allocated with the same shape and dtype as ``data`` and reset
        to zero by :meth:`zero_grad` (called by optimizers / modules between
        steps).
    name:
        Optional dotted name assigned when the parameter is registered in a
        module hierarchy; used for state dicts and per-parameter policies
        (e.g. FedProx-LG global/local partitioning).
    """

    def __init__(self, data: np.ndarray, name: Optional[str] = None):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    def to_dtype(self, dtype) -> None:
        """Cast ``data`` and ``grad`` to ``dtype`` in place (no-op when equal)."""
        dtype = np.dtype(dtype)
        if self.data.dtype != dtype:
            self.data = self.data.astype(dtype)
            self.grad = self.grad.astype(dtype)

    @property
    def shape(self):
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the gradient buffer to zeros in place."""
        self.grad.fill(0.0)

    def copy_(self, values: np.ndarray) -> None:
        """Copy ``values`` into the parameter in place (shape-checked).

        Values are cast to the parameter's own dtype: this is the single
        downcast a float32 model performs when loading a float64 state
        (``load_state_dict`` is the compute-dtype boundary).
        """
        values = np.asarray(values)
        if values.shape != self.data.shape:
            raise ValueError(
                f"cannot copy array of shape {values.shape} into parameter "
                f"{self.name or '<unnamed>'} of shape {self.data.shape}"
            )
        np.copyto(self.data, values, casting="same_kind")

    def clone(self) -> np.ndarray:
        """Return a defensive copy of the parameter values."""
        return self.data.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"
