"""Trainable parameters for the NumPy neural-network substrate."""

from __future__ import annotations

from typing import Optional

import numpy as np


class Parameter:
    """A trainable tensor with an associated gradient buffer.

    Attributes
    ----------
    data:
        The parameter values, a ``float64`` NumPy array.
    grad:
        Accumulated gradient of the loss with respect to ``data``.  It is
        always allocated with the same shape as ``data`` and reset to zero by
        :meth:`zero_grad` (called by optimizers / modules between steps).
    name:
        Optional dotted name assigned when the parameter is registered in a
        module hierarchy; used for state dicts and per-parameter policies
        (e.g. FedProx-LG global/local partitioning).
    """

    def __init__(self, data: np.ndarray, name: Optional[str] = None):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self):
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the gradient buffer to zeros in place."""
        self.grad.fill(0.0)

    def copy_(self, values: np.ndarray) -> None:
        """Copy ``values`` into the parameter in place (shape-checked)."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != self.data.shape:
            raise ValueError(
                f"cannot copy array of shape {values.shape} into parameter "
                f"{self.name or '<unnamed>'} of shape {self.data.shape}"
            )
        np.copyto(self.data, values)

    def clone(self) -> np.ndarray:
        """Return a defensive copy of the parameter values."""
        return self.data.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"
