"""Optimizers: SGD (with momentum) and Adam, both with decoupled-from-loss
L2 regularization (weight decay), matching the paper's training setup
(Adam, learning rate 2e-4, L2 strength 1e-5).

Every ``step()`` updates in place (``np.multiply``/``np.add``/... with
``out=``) into the parameter buffers, the persistent moment buffers, and a
small set of per-parameter scratch buffers, so a training step allocates no
per-parameter temporaries after the first call.  The in-place formulations
apply the identical IEEE operations in the identical order as the original
expression forms, so the produced parameters are **bit-identical** (guarded
by the optimizer parity test and the pre-refactor seeded regression).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn.parameter import Parameter


class Optimizer:
    """Base optimizer over an explicit list of parameters."""

    def __init__(self, parameters: Sequence[Parameter], lr: float, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.lr = float(lr)
        self.weight_decay = float(weight_decay)
        self._scratch: Dict[int, np.ndarray] = {}

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _scratch_for(self, key: int, param: Parameter) -> np.ndarray:
        """A persistent work buffer shaped like ``param`` (lazy, reused)."""
        buffer = self._scratch.get(key)
        if buffer is None or buffer.shape != param.data.shape:
            buffer = np.empty_like(param.data)
            self._scratch[key] = buffer
        return buffer

    def _regularized_grad(self, param: Parameter, out: np.ndarray) -> np.ndarray:
        """``grad + weight_decay * data`` without temporaries.

        Writes into ``out`` and returns it when weight decay applies;
        returns ``param.grad`` untouched otherwise.  Same operations (and
        the same values, bit for bit) as the expression form.
        """
        if self.weight_decay:
            np.multiply(param.data, self.weight_decay, out=out)
            np.add(param.grad, out, out=out)
            return out
        return param.grad


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for index, param in enumerate(self.parameters):
            scratch = self._scratch_for(index, param)
            grad = self._regularized_grad(param, out=scratch)
            if self.momentum:
                velocity = self._velocity.get(index)
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                    self._velocity[index] = velocity
                # velocity = momentum * velocity + grad, in place.
                np.multiply(velocity, self.momentum, out=velocity)
                np.add(velocity, grad, out=velocity)
                update = velocity
            else:
                update = grad
            # data -= lr * update, staged through the scratch buffer (the
            # update may be the raw gradient, which must stay untouched).
            np.multiply(update, self.lr, out=scratch)
            np.subtract(param.data, scratch, out=param.data)


class Adam(Optimizer):
    """Adam optimizer with bias correction."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr, weight_decay)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._step_count = 0
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}
        self._scratch2: Dict[int, np.ndarray] = {}

    def _scratch2_for(self, key: int, param: Parameter) -> np.ndarray:
        buffer = self._scratch2.get(key)
        if buffer is None or buffer.shape != param.data.shape:
            buffer = np.empty_like(param.data)
            self._scratch2[key] = buffer
        return buffer

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for index, param in enumerate(self.parameters):
            work = self._scratch_for(index, param)
            work2 = self._scratch2_for(index, param)
            grad = self._regularized_grad(param, out=work)
            m = self._first_moment.get(index)
            v = self._second_moment.get(index)
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
                self._first_moment[index] = m
                self._second_moment[index] = v
            # m = beta1 * m + (1 - beta1) * grad, in place.
            np.multiply(m, self.beta1, out=m)
            np.multiply(grad, 1.0 - self.beta1, out=work2)
            np.add(m, work2, out=m)
            # v = beta2 * v + (1 - beta2) * grad**2, in place (grad**2 with
            # an integer exponent is exactly grad * grad).
            np.multiply(v, self.beta2, out=v)
            np.multiply(grad, grad, out=work2)
            np.multiply(work2, 1.0 - self.beta2, out=work2)
            np.add(v, work2, out=v)
            # data -= lr * (m / bias1) / (sqrt(v / bias2) + eps), staged
            # exactly as the expression evaluates.
            np.divide(m, bias1, out=work)
            np.multiply(work, self.lr, out=work)
            np.divide(v, bias2, out=work2)
            np.sqrt(work2, out=work2)
            np.add(work2, self.eps, out=work2)
            np.divide(work, work2, out=work)
            np.subtract(param.data, work, out=param.data)

    def reset_state(self) -> None:
        """Drop accumulated moments (used when a fresh round re-initializes training)."""
        self._step_count = 0
        self._first_moment.clear()
        self._second_moment.clear()


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping.  Used by differentially-private local
    training (update clipping) and as a general stabilizer for the deeper
    estimators under federated aggregation.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    parameters = list(parameters)
    total = 0.0
    for param in parameters:
        total += float(np.sum(param.grad**2))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in parameters:
            param.grad *= scale
    return norm


def clip_grad_value(parameters: Sequence[Parameter], max_value: float) -> None:
    """Clamp every gradient element into ``[-max_value, max_value]`` in place."""
    if max_value <= 0:
        raise ValueError(f"max_value must be positive, got {max_value}")
    for param in parameters:
        np.clip(param.grad, -max_value, max_value, out=param.grad)


def make_optimizer(
    name: str,
    parameters: Sequence[Parameter],
    lr: float,
    weight_decay: float = 0.0,
    momentum: float = 0.9,
) -> Optimizer:
    """Factory mapping configuration strings to optimizer instances."""
    name = name.lower()
    if name == "sgd":
        return SGD(parameters, lr=lr, momentum=momentum, weight_decay=weight_decay)
    if name == "adam":
        return Adam(parameters, lr=lr, weight_decay=weight_decay)
    raise ValueError(f"unknown optimizer {name!r}; expected 'sgd' or 'adam'")
