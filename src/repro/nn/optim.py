"""Optimizers: SGD (with momentum) and Adam, both with decoupled-from-loss
L2 regularization (weight decay), matching the paper's training setup
(Adam, learning rate 2e-4, L2 strength 1e-5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn.parameter import Parameter


class Optimizer:
    """Base optimizer over an explicit list of parameters."""

    def __init__(self, parameters: Sequence[Parameter], lr: float, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.lr = float(lr)
        self.weight_decay = float(weight_decay)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _regularized_grad(self, param: Parameter) -> np.ndarray:
        if self.weight_decay:
            return param.grad + self.weight_decay * param.data
        return param.grad


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for index, param in enumerate(self.parameters):
            grad = self._regularized_grad(param)
            if self.momentum:
                velocity = self._velocity.get(index)
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[index] = velocity
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer with bias correction."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr, weight_decay)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._step_count = 0
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for index, param in enumerate(self.parameters):
            grad = self._regularized_grad(param)
            m = self._first_moment.get(index)
            v = self._second_moment.get(index)
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad**2
            self._first_moment[index] = m
            self._second_moment[index] = v
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset_state(self) -> None:
        """Drop accumulated moments (used when a fresh round re-initializes training)."""
        self._step_count = 0
        self._first_moment.clear()
        self._second_moment.clear()


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping.  Used by differentially-private local
    training (update clipping) and as a general stabilizer for the deeper
    estimators under federated aggregation.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    parameters = list(parameters)
    total = 0.0
    for param in parameters:
        total += float(np.sum(param.grad**2))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in parameters:
            param.grad *= scale
    return norm


def clip_grad_value(parameters: Sequence[Parameter], max_value: float) -> None:
    """Clamp every gradient element into ``[-max_value, max_value]`` in place."""
    if max_value <= 0:
        raise ValueError(f"max_value must be positive, got {max_value}")
    for param in parameters:
        np.clip(param.grad, -max_value, max_value, out=param.grad)


def make_optimizer(
    name: str,
    parameters: Sequence[Parameter],
    lr: float,
    weight_decay: float = 0.0,
    momentum: float = 0.9,
) -> Optimizer:
    """Factory mapping configuration strings to optimizer instances."""
    name = name.lower()
    if name == "sgd":
        return SGD(parameters, lr=lr, momentum=momentum, weight_decay=weight_decay)
    if name == "adam":
        return Adam(parameters, lr=lr, weight_decay=weight_decay)
    raise ValueError(f"unknown optimizer {name!r}; expected 'sgd' or 'adam'")
