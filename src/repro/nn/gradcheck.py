"""Numerical gradient checking utilities.

These are used by the test suite to verify every layer's analytic backward
pass against central finite differences, which is what makes the from-scratch
substrate trustworthy.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.nn.module import Module


def numerical_gradient(
    func: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Central finite-difference gradient of a scalar function of an array."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = func(x)
        flat[index] = original - eps
        minus = func(x)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2.0 * eps)
    return grad


def check_layer_input_gradient(
    layer: Module,
    x: np.ndarray,
    eps: float = 1e-5,
    seed_grad: np.ndarray = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Compare a layer's analytic input gradient with finite differences.

    The comparison scalarizes the layer output via a fixed random projection
    ``sum(output * seed_grad)``, whose gradient w.r.t. the output is exactly
    ``seed_grad``; the layer's ``backward(seed_grad)`` must then match the
    numerical gradient of the scalarized function.
    """
    x = np.asarray(x, dtype=np.float64)
    reference_output = layer.forward(x)
    if seed_grad is None:
        rng = np.random.default_rng(0)
        seed_grad = rng.normal(size=reference_output.shape)

    def scalarized(values: np.ndarray) -> float:
        return float(np.sum(layer.forward(values) * seed_grad))

    numeric = numerical_gradient(scalarized, x.copy(), eps=eps)
    layer.forward(x)
    analytic = layer.backward(seed_grad)
    return analytic, numeric


def check_layer_parameter_gradients(
    layer: Module,
    x: np.ndarray,
    eps: float = 1e-5,
) -> dict:
    """Compare analytic parameter gradients against finite differences.

    Returns a mapping ``parameter name -> (analytic, numeric)``.
    """
    x = np.asarray(x, dtype=np.float64)
    rng = np.random.default_rng(0)
    seed_grad = rng.normal(size=layer.forward(x).shape)

    layer.zero_grad()
    layer.forward(x)
    layer.backward(seed_grad)
    analytic_grads = {name: param.grad.copy() for name, param in layer.named_parameters()}

    results = {}
    for name, param in layer.named_parameters():
        def scalarized(values: np.ndarray, target_param=param) -> float:
            original = target_param.data.copy()
            target_param.data = values.reshape(original.shape)
            out = float(np.sum(layer.forward(x) * seed_grad))
            target_param.data = original
            return out

        numeric = numerical_gradient(scalarized, param.data.copy().reshape(-1), eps=eps)
        results[name] = (analytic_grads[name].reshape(-1), numeric)
    return results


def max_relative_error(analytic: np.ndarray, numeric: np.ndarray, floor: float = 1e-7) -> float:
    """Maximum element-wise relative error between two gradient arrays."""
    analytic = np.asarray(analytic, dtype=np.float64)
    numeric = np.asarray(numeric, dtype=np.float64)
    denominator = np.maximum(np.abs(analytic) + np.abs(numeric), floor)
    return float(np.max(np.abs(analytic - numeric) / denominator))
