"""Persistent per-layer workspaces for the training hot path.

Every training step used to reallocate the same large temporaries — the
padded input, the im2col ``cols`` matrix, ``grad_cols``, matmul staging
buffers — once per layer per step.  For the model sizes of the paper those
allocations dominate the step wall-clock (fresh multi-megabyte buffers are
served by the allocator as new pages, so the first write of every step pays
page faults, exactly the memory-bound regime the PR 4 ``param_ops``
benchmark flagged).

A :class:`Workspace` is a small per-layer pool of named scratch buffers
keyed by ``(tag, shape, dtype)``.  Because the batch shape is fixed across
a training run, every step after the first reuses the same warm pages via
``out=`` kwargs instead of reallocating.

Aliasing rules (see ``docs/performance.md``)
--------------------------------------------
* A workspace buffer is **internal scratch**: it may be handed out only for
  values that are consumed before the owning layer's next ``forward`` /
  ``backward`` call (the im2col cache consumed by ``backward``, matmul
  staging, the padded input).
* Arrays **returned** from a layer (outputs, input gradients) are always
  freshly allocated — callers may keep them across steps (e.g.
  ``predict_dataset`` collects per-batch outputs), so they must never alias
  a workspace.
* Workspaces never cross layer instances, so thread-parallel clients (each
  with their own model) never share scratch.

The global switch :func:`workspaces_disabled` restores the pre-workspace
allocating behavior (``np.pad`` + fresh fancy-indexing + fresh matmuls).
It exists for parity tests and as the reproducible "pre-PR" baseline of
``benchmarks/test_training_engine.py``; both paths compute bit-identical
values — buffer reuse never changes an IEEE operation, only where the
result lands.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Optional, Tuple

import numpy as np

_ENABLED = True


def workspaces_enabled() -> bool:
    """Whether layers reuse persistent scratch buffers (the default)."""
    return _ENABLED


@contextmanager
def workspaces_disabled():
    """Run with per-call allocations (the pre-workspace path) for parity tests."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


class Workspace:
    """A pool of reusable scratch buffers owned by one layer (or loss).

    ``get`` returns a persistent buffer for ``(tag, shape, dtype)``,
    allocating it on first use; ``zeros`` additionally guarantees the buffer
    was zero-filled **at allocation time** (callers rely on untouched
    regions staying zero — e.g. the padding border of a padded-input
    buffer, whose interior is rewritten every step while the border is
    written only once).

    When workspaces are globally disabled both methods return ``None`` and
    callers fall back to their allocating expressions.

    The pool intentionally does not survive pickling: models travel to
    process-pool workers as part of a client, and shipping warm scratch
    would only bloat the payload.  The receiving side re-grows its own
    buffers on first use.
    """

    __slots__ = ("_buffers",)

    def __init__(self):
        self._buffers: Dict[Tuple[str, Tuple[int, ...], np.dtype], np.ndarray] = {}

    def get(self, tag: str, shape: Tuple[int, ...], dtype=np.float64) -> Optional[np.ndarray]:
        """The persistent buffer for ``(tag, shape, dtype)`` (lazy, reused)."""
        if not _ENABLED:
            return None
        key = (tag, tuple(shape), np.dtype(dtype))
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = np.empty(key[1], dtype=key[2])
            self._buffers[key] = buffer
        return buffer

    def zeros(self, tag: str, shape: Tuple[int, ...], dtype=np.float64) -> Optional[np.ndarray]:
        """Like :meth:`get`, but the buffer is zero-filled when first allocated."""
        if not _ENABLED:
            return None
        key = (tag, tuple(shape), np.dtype(dtype))
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = np.zeros(key[1], dtype=key[2])
            self._buffers[key] = buffer
        return buffer

    def clear(self) -> None:
        """Drop every buffer (e.g. after a dtype switch, to release memory)."""
        self._buffers.clear()

    def __len__(self) -> int:
        return len(self._buffers)

    # -- pickling: never ship scratch across process boundaries -----------------
    def __reduce__(self):
        # A workspace unpickles empty: the receiving process re-grows its own
        # buffers on first use instead of shipping warm scratch around.
        return (Workspace, ())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        total = sum(buf.nbytes for buf in self._buffers.values())
        return f"Workspace({len(self._buffers)} buffers, {total} bytes)"
