"""Learning-rate schedulers.

The paper trains with a fixed learning rate (2e-4, Adam), but schedulers are
a standard part of the local-training toolbox — the local fine-tuning stage
in particular benefits from decaying the rate as it adapts the global model
to a client — so the substrate provides the usual schedules on top of any
:class:`~repro.nn.optim.Optimizer`.

Every scheduler mutates ``optimizer.lr`` in place when :meth:`step` is
called, mirroring the familiar PyTorch contract (``step`` once per epoch or
per round, depending on how the caller counts).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.nn.optim import Optimizer


class LRScheduler:
    """Base class: tracks the step count and the optimizer's initial rate."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = float(optimizer.lr)
        self.last_step = 0

    def get_lr(self, step: int) -> float:
        """Learning rate that should be active at ``step`` (0 = before any step)."""
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step and apply the new learning rate to the optimizer."""
        self.last_step += 1
        new_lr = float(self.get_lr(self.last_step))
        if new_lr <= 0:
            raise RuntimeError(f"{self.__class__.__name__} produced non-positive lr {new_lr}")
        self.optimizer.lr = new_lr
        return new_lr

    @property
    def current_lr(self) -> float:
        return float(self.optimizer.lr)

    def reset(self) -> None:
        """Return to the initial schedule state and restore the base rate."""
        self.last_step = 0
        self.optimizer.lr = self.base_lr


class ConstantLR(LRScheduler):
    """Keeps the learning rate fixed (the paper's configuration)."""

    def get_lr(self, step: int) -> float:
        return self.base_lr


class StepLR(LRScheduler):
    """Multiply the rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def get_lr(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.step_size)


class ExponentialLR(LRScheduler):
    """Multiply the rate by ``gamma`` every step."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.99):
        super().__init__(optimizer)
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.gamma = float(gamma)

    def get_lr(self, step: int) -> float:
        return self.base_lr * self.gamma**step


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base rate to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if total_steps <= 0:
            raise ValueError(f"total_steps must be positive, got {total_steps}")
        if min_lr < 0:
            raise ValueError(f"min_lr must be non-negative, got {min_lr}")
        if min_lr > optimizer.lr:
            raise ValueError("min_lr must not exceed the optimizer's initial rate")
        self.total_steps = int(total_steps)
        self.min_lr = float(min_lr)

    def get_lr(self, step: int) -> float:
        progress = min(step, self.total_steps) / self.total_steps
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class WarmupLR(LRScheduler):
    """Linear warm-up to the base rate, then hand off to an inner schedule.

    The first ``warmup_steps`` steps ramp the rate linearly from
    ``base_lr / warmup_steps`` to ``base_lr``; afterwards the wrapped
    scheduler (or a constant rate when none is given) takes over with its own
    step count starting at zero.
    """

    def __init__(self, optimizer: Optimizer, warmup_steps: int, after: Optional[LRScheduler] = None):
        super().__init__(optimizer)
        if warmup_steps <= 0:
            raise ValueError(f"warmup_steps must be positive, got {warmup_steps}")
        if after is not None and after.optimizer is not optimizer:
            raise ValueError("the wrapped scheduler must drive the same optimizer")
        self.warmup_steps = int(warmup_steps)
        self.after = after

    def get_lr(self, step: int) -> float:
        if step <= self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        if self.after is None:
            return self.base_lr
        return self.after.get_lr(step - self.warmup_steps)


class MultiStepLR(LRScheduler):
    """Multiply the rate by ``gamma`` at each of the given milestones."""

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.1):
        super().__init__(optimizer)
        steps: List[int] = sorted(int(m) for m in milestones)
        if not steps or steps[0] <= 0:
            raise ValueError("milestones must be positive step indices")
        if len(set(steps)) != len(steps):
            raise ValueError("milestones must be distinct")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.milestones = steps
        self.gamma = float(gamma)

    def get_lr(self, step: int) -> float:
        passed = sum(1 for milestone in self.milestones if step >= milestone)
        return self.base_lr * self.gamma**passed


def make_scheduler(name: str, optimizer: Optimizer, **kwargs) -> LRScheduler:
    """Factory mapping configuration strings to scheduler instances."""
    registry = {
        "constant": ConstantLR,
        "step": StepLR,
        "exponential": ExponentialLR,
        "cosine": CosineAnnealingLR,
        "warmup": WarmupLR,
        "multistep": MultiStepLR,
    }
    key = name.lower()
    if key not in registry:
        raise ValueError(f"unknown scheduler {name!r}; expected one of {sorted(registry)}")
    return registry[key](optimizer, **kwargs)
