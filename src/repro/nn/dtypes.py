"""The compute-dtype contract of the NumPy substrate.

Training arithmetic runs in a single configurable floating dtype — the
**compute dtype** — threaded through every layer, loss, and optimizer via
:meth:`repro.nn.Module.set_compute_dtype`.

``float64`` is the default and is bit-identical to the historical behavior
(every cast it implies was already there).  ``float32`` is the opt-in fast
path: it halves the memory bandwidth of the im2col/GEMM hot loop, which is
where the memory-bound client step spends its time.

The dtype is a property of *local computation only*.  Everything that
crosses the client boundary — ``state_dict`` / ``flat_model_state``
parameter states, server aggregation, wire codecs, checkpoints — stays
``float64``: a float32 model loads a float64 state by casting down once at
``load_state_dict`` time and exports by casting up once at the
``state_dict`` boundary.  See ``docs/performance.md``.
"""

from __future__ import annotations

import numpy as np

#: Compute dtypes accepted by configs / CLI, in preference order.
COMPUTE_DTYPE_CHOICES = ("float64", "float32")

_ALLOWED = tuple(np.dtype(name) for name in COMPUTE_DTYPE_CHOICES)


def resolve_compute_dtype(dtype) -> np.dtype:
    """Normalize a compute-dtype spec (name, dtype, or ``None``) to a dtype.

    ``None`` means the default (``float64``).  Anything outside
    :data:`COMPUTE_DTYPE_CHOICES` is rejected — the substrate's numerics
    (stable sigmoids, loss reductions, optimizer moments) are only
    validated for these two dtypes.
    """
    if dtype is None:
        return np.dtype(np.float64)
    try:
        resolved = np.dtype(dtype)
    except TypeError as error:
        raise ValueError(
            f"unsupported compute dtype {dtype!r}; expected one of {COMPUTE_DTYPE_CHOICES}"
        ) from error
    if resolved not in _ALLOWED:
        raise ValueError(
            f"unsupported compute dtype {dtype!r}; expected one of {COMPUTE_DTYPE_CHOICES}"
        )
    return resolved
