"""Dataset containers for routability samples.

A sample is one placement solution: its feature tensor ``X in R^(C x H x W)``
and its ground-truth DRC hotspot map ``Y in {0,1}^(H x W)``, plus provenance
metadata (design name, benchmark suite, placement index) used for
design-disjoint train/test splitting.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

PathLike = Union[str, Path]


@dataclass
class PlacementSample:
    """One (features, label) pair extracted from a placement solution."""

    features: np.ndarray  # (C, H, W)
    label: np.ndarray  # (H, W) binary
    design_name: str
    suite: str
    placement_index: int

    def __post_init__(self):
        self.features = np.asarray(self.features, dtype=np.float64)
        self.label = np.asarray(self.label, dtype=np.float64)
        if self.features.ndim != 3:
            raise ValueError(f"features must be (C, H, W), got shape {self.features.shape}")
        if self.label.ndim != 2:
            raise ValueError(f"label must be (H, W), got shape {self.label.shape}")
        if self.features.shape[1:] != self.label.shape:
            raise ValueError(
                f"feature spatial shape {self.features.shape[1:]} does not match "
                f"label shape {self.label.shape}"
            )

    @property
    def num_channels(self) -> int:
        return self.features.shape[0]

    @property
    def grid_shape(self) -> Tuple[int, int]:
        return self.label.shape

    @property
    def hotspot_fraction(self) -> float:
        return float(self.label.mean())


class RoutabilityDataset:
    """An in-memory collection of :class:`PlacementSample`."""

    def __init__(self, samples: Optional[Iterable[PlacementSample]] = None, name: str = "dataset"):
        self.name = name
        self._samples: List[PlacementSample] = list(samples) if samples is not None else []
        #: Contiguous (features, labels) pack per dtype, built lazily by
        #: :meth:`packed_arrays` and invalidated whenever a sample is added.
        self._packed: Dict[np.dtype, Tuple[np.ndarray, np.ndarray]] = {}
        self._validate_consistency()

    def _validate_consistency(self) -> None:
        if not self._samples:
            return
        reference = self._samples[0]
        for sample in self._samples[1:]:
            if sample.features.shape != reference.features.shape:
                raise ValueError(
                    f"inconsistent feature shapes in dataset {self.name!r}: "
                    f"{sample.features.shape} vs {reference.features.shape}"
                )

    # -- collection protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self._samples)

    def __getitem__(self, index: int) -> PlacementSample:
        return self._samples[index]

    def __iter__(self) -> Iterator[PlacementSample]:
        return iter(self._samples)

    def add(self, sample: PlacementSample) -> None:
        if self._samples and sample.features.shape != self._samples[0].features.shape:
            raise ValueError("sample shape does not match the rest of the dataset")
        self._samples.append(sample)
        self._packed.clear()

    def extend(self, samples: Iterable[PlacementSample]) -> None:
        for sample in samples:
            self.add(sample)

    # -- tensor views ---------------------------------------------------------
    @property
    def num_channels(self) -> int:
        if not self._samples:
            raise ValueError(f"dataset {self.name!r} is empty")
        return self._samples[0].num_channels

    @property
    def grid_shape(self) -> Tuple[int, int]:
        if not self._samples:
            raise ValueError(f"dataset {self.name!r} is empty")
        return self._samples[0].grid_shape

    def packed_arrays(self, dtype=np.float64) -> Tuple[np.ndarray, np.ndarray]:
        """Contiguous ``(N, C, H, W)`` features and ``(N, H, W)`` labels.

        Packed **once** per dtype and cached (samples are immutable in
        practice; any :meth:`add` invalidates the cache), so batch collation
        becomes a single fancy-index gather instead of a per-sample Python
        loop.  The returned arrays are shared and read-only — callers that
        need to mutate must copy (:meth:`features_array` /
        :meth:`labels_array` do exactly that).
        """
        if not self._samples:
            raise ValueError(f"dataset {self.name!r} is empty")
        key = np.dtype(dtype)
        cached = self._packed.get(key)
        if cached is None:
            base_key = np.dtype(np.float64)
            base = self._packed.get(base_key)
            if base is None:
                features = np.stack([sample.features for sample in self._samples], axis=0)
                labels = np.stack([sample.label for sample in self._samples], axis=0)
                features.setflags(write=False)
                labels.setflags(write=False)
                base = (features, labels)
                self._packed[base_key] = base
            if key == base_key:
                cached = base
            else:
                features = base[0].astype(key)
                labels = base[1].astype(key)
                features.setflags(write=False)
                labels.setflags(write=False)
                cached = (features, labels)
                self._packed[key] = cached
        return cached

    def features_array(self) -> np.ndarray:
        """All features stacked as ``(N, C, H, W)`` (a fresh, writable copy)."""
        return self.packed_arrays()[0].copy()

    def labels_array(self) -> np.ndarray:
        """All labels stacked as ``(N, H, W)`` (a fresh, writable copy)."""
        return self.packed_arrays()[1].copy()

    def design_names(self) -> List[str]:
        """Distinct design names present, in first-appearance order."""
        return list(dict.fromkeys(sample.design_name for sample in self._samples))

    def suites(self) -> List[str]:
        """Distinct benchmark suites present, in first-appearance order."""
        return list(dict.fromkeys(sample.suite for sample in self._samples))

    def hotspot_fraction(self) -> float:
        """Mean hotspot fraction over all samples (label imbalance indicator)."""
        if not self._samples:
            return 0.0
        return float(np.mean([sample.hotspot_fraction for sample in self._samples]))

    # -- splitting ------------------------------------------------------------
    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "RoutabilityDataset":
        """A new dataset containing only the given sample indices."""
        picked = [self._samples[i] for i in indices]
        return RoutabilityDataset(picked, name=name or f"{self.name}/subset")

    def filter_designs(self, design_names: Sequence[str], name: Optional[str] = None) -> "RoutabilityDataset":
        """A new dataset containing only samples of the given designs."""
        wanted = set(design_names)
        picked = [sample for sample in self._samples if sample.design_name in wanted]
        return RoutabilityDataset(picked, name=name or f"{self.name}/designs")

    def split_by_design(
        self,
        train_fraction: float,
        rng: np.random.Generator,
        name_prefix: Optional[str] = None,
    ) -> Tuple["RoutabilityDataset", "RoutabilityDataset"]:
        """Design-disjoint split: no design contributes to both sides.

        Mirrors the paper's protocol where testing designs are completely
        unseen during training.
        """
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
        designs = self.design_names()
        if len(designs) < 2:
            raise ValueError("need at least two designs for a design-disjoint split")
        shuffled = list(designs)
        rng.shuffle(shuffled)
        n_train = max(1, min(len(shuffled) - 1, int(round(train_fraction * len(shuffled)))))
        train_designs = shuffled[:n_train]
        test_designs = shuffled[n_train:]
        prefix = name_prefix or self.name
        return (
            self.filter_designs(train_designs, name=f"{prefix}/train"),
            self.filter_designs(test_designs, name=f"{prefix}/test"),
        )

    # -- persistence -------------------------------------------------------------
    def save(self, path: PathLike) -> Path:
        """Serialize the dataset to a ``.npz`` archive."""
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(path.suffix + ".npz")
        path.parent.mkdir(parents=True, exist_ok=True)
        if not self._samples:
            raise ValueError(f"refusing to save empty dataset {self.name!r}")
        np.savez_compressed(
            path,
            features=self.features_array(),
            labels=self.labels_array(),
            design_names=np.array([s.design_name for s in self._samples]),
            suites=np.array([s.suite for s in self._samples]),
            placement_indices=np.array([s.placement_index for s in self._samples]),
            name=np.array(self.name),
        )
        return path

    @classmethod
    def load(cls, path: PathLike) -> "RoutabilityDataset":
        """Load a dataset previously written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"no dataset found at {path}")
        with np.load(path, allow_pickle=False) as archive:
            features = archive["features"]
            labels = archive["labels"]
            design_names = archive["design_names"]
            suites = archive["suites"]
            placement_indices = archive["placement_indices"]
            name = str(archive["name"])
        samples = [
            PlacementSample(
                features=features[i],
                label=labels[i],
                design_name=str(design_names[i]),
                suite=str(suites[i]),
                placement_index=int(placement_indices[i]),
            )
            for i in range(features.shape[0])
        ]
        return cls(samples, name=name)

    def summary(self) -> Dict[str, object]:
        """Human-readable dataset summary used by reports and examples."""
        return {
            "name": self.name,
            "samples": len(self),
            "designs": len(self.design_names()),
            "suites": self.suites(),
            "channels": self.num_channels if self._samples else 0,
            "grid": self.grid_shape if self._samples else (0, 0),
            "hotspot_fraction": round(self.hotspot_fraction(), 4),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoutabilityDataset(name={self.name!r}, samples={len(self)})"
