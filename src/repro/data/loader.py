"""Mini-batch iteration over routability datasets.

Batches are gathered straight out of the dataset's contiguous packed
arrays (:meth:`RoutabilityDataset.packed_arrays`) into **reused** batch
buffers — one ``np.take`` per batch instead of a per-sample Python
stacking loop.

Aliasing contract
-----------------
A returned ``(features, labels)`` pair is valid until the **next** batch is
drawn from the same loader (the training loop's consume-then-advance
pattern); callers that keep batches across draws must copy.  The gathered
values are identical to the historical stack-based collation, bit for bit
(``tests/data`` asserts the parity); the reference implementation survives
as :meth:`DataLoader._collate_stacked` and is selected when
:func:`repro.nn.workspace.workspaces_disabled` is active, which is also how
the training-engine benchmark reconstructs the pre-engine baseline.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.data.dataset import RoutabilityDataset
from repro.nn.workspace import workspaces_enabled
from repro.utils.rng import new_rng
from repro.utils.validation import check_positive


class DataLoader:
    """Iterates a dataset in mini-batches of ``(features, labels)`` arrays.

    Features are returned as ``(B, C, H, W)`` and labels as ``(B, 1, H, W)``
    so they can be compared directly against model outputs.  ``dtype``
    selects the dtype batches are produced in (the trainer passes its
    compute dtype, so a float32 run never upcasts batch data); the default
    ``float64`` matches the historical behavior exactly.
    """

    def __init__(
        self,
        dataset: RoutabilityDataset,
        batch_size: int,
        shuffle: bool = True,
        drop_last: bool = False,
        rng: Optional[np.random.Generator] = None,
        dtype=None,
    ):
        check_positive("batch_size", batch_size)
        if len(dataset) == 0:
            raise ValueError("cannot build a DataLoader over an empty dataset")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self.dtype = np.dtype(dtype) if dtype is not None else np.dtype(np.float64)
        self._rng = rng if rng is not None else new_rng(0)
        self._feature_buffer: Optional[np.ndarray] = None
        self._label_buffer: Optional[np.ndarray] = None

    def __len__(self) -> int:
        full, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            batch_indices = indices[start : start + self.batch_size]
            if self.drop_last and batch_indices.size < self.batch_size:
                break
            yield self._collate(batch_indices)

    def _batch_buffers(self, size: int) -> Tuple[np.ndarray, np.ndarray]:
        """Views of the persistent batch buffers for a batch of ``size``."""
        if self._feature_buffer is None:
            channels = self.dataset.num_channels
            height, width = self.dataset.grid_shape
            self._feature_buffer = np.empty(
                (self.batch_size, channels, height, width), dtype=self.dtype
            )
            self._label_buffer = np.empty((self.batch_size, 1, height, width), dtype=self.dtype)
        return self._feature_buffer[:size], self._label_buffer[:size]

    def _collate(self, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if not workspaces_enabled():
            return self._collate_stacked(indices)
        indices = np.asarray(indices, dtype=np.intp)
        features, labels = self.dataset.packed_arrays(self.dtype)
        feature_batch, label_batch = self._batch_buffers(indices.size)
        # mode="clip" takes NumPy's direct write-through path (indices are
        # in range by construction; see repro.nn.functional.im2col).
        np.take(features, indices, axis=0, out=feature_batch, mode="clip")
        np.take(labels, indices, axis=0, out=label_batch[:, 0], mode="clip")
        return feature_batch, label_batch

    def _collate_stacked(self, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """The historical per-sample collation (parity reference, pre-engine path)."""
        features = np.stack([self.dataset[int(i)].features for i in indices], axis=0)
        labels = np.stack([self.dataset[int(i)].label for i in indices], axis=0)
        if self.dtype != features.dtype:
            features = features.astype(self.dtype)
            labels = labels.astype(self.dtype)
        return features, labels[:, None, :, :]

    def sample_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Draw one random batch (used for single-step training loops)."""
        size = min(self.batch_size, len(self.dataset))
        indices = self._rng.choice(len(self.dataset), size=size, replace=False)
        return self._collate(indices)


def infinite_batches(loader: DataLoader) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield batches forever, reshuffling at each epoch boundary."""
    while True:
        yield from loader
