"""Mini-batch iteration over routability datasets."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.data.dataset import RoutabilityDataset
from repro.utils.rng import new_rng
from repro.utils.validation import check_positive


class DataLoader:
    """Iterates a dataset in mini-batches of ``(features, labels)`` arrays.

    Features are returned as ``(B, C, H, W)`` and labels as ``(B, 1, H, W)``
    so they can be compared directly against model outputs.
    """

    def __init__(
        self,
        dataset: RoutabilityDataset,
        batch_size: int,
        shuffle: bool = True,
        drop_last: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        check_positive("batch_size", batch_size)
        if len(dataset) == 0:
            raise ValueError("cannot build a DataLoader over an empty dataset")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self._rng = rng if rng is not None else new_rng(0)

    def __len__(self) -> int:
        full, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            batch_indices = indices[start : start + self.batch_size]
            if self.drop_last and batch_indices.size < self.batch_size:
                break
            yield self._collate(batch_indices)

    def _collate(self, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        features = np.stack([self.dataset[int(i)].features for i in indices], axis=0)
        labels = np.stack([self.dataset[int(i)].label for i in indices], axis=0)
        return features, labels[:, None, :, :]

    def sample_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Draw one random batch (used for single-step training loops)."""
        size = min(self.batch_size, len(self.dataset))
        indices = self._rng.choice(len(self.dataset), size=size, replace=False)
        return self._collate(indices)


def infinite_batches(loader: DataLoader) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield batches forever, reshuffling at each epoch boundary."""
    while True:
        yield from loader
