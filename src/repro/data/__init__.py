"""Datasets, client assignment (Table 2), and batch loading."""

from repro.data.clients import (
    PAPER_TOTAL_DESIGNS,
    PAPER_TOTAL_PLACEMENTS,
    TABLE2_CLIENTS,
    ClientData,
    ClientSpec,
    CorpusBuilder,
    CorpusConfig,
    build_table2_corpus,
    table2_rows,
)
from repro.data.augmentation import (
    D4_SYMMETRIES,
    RandomAugmenter,
    apply_symmetry,
    augment_dataset,
    augment_sample,
    symmetry_name,
)
from repro.data.dataset import PlacementSample, RoutabilityDataset
from repro.data.loader import DataLoader, infinite_batches

__all__ = [
    "PlacementSample",
    "RoutabilityDataset",
    "DataLoader",
    "infinite_batches",
    "D4_SYMMETRIES",
    "apply_symmetry",
    "symmetry_name",
    "augment_sample",
    "augment_dataset",
    "RandomAugmenter",
    "ClientSpec",
    "ClientData",
    "CorpusConfig",
    "CorpusBuilder",
    "TABLE2_CLIENTS",
    "PAPER_TOTAL_DESIGNS",
    "PAPER_TOTAL_PLACEMENTS",
    "build_table2_corpus",
    "table2_rows",
]
