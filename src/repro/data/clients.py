"""The paper's 9-client decentralized data setup (Table 2) and corpus synthesis.

Each client owns designs from exactly one benchmark suite (designs from the
same company tend to be similar), train and test designs are disjoint, and no
design is shared between clients.  The number of designs per client follows
Table 2 exactly; the number of placement solutions per design is scaled by
``CorpusConfig.placement_scale`` so the corpus can be regenerated at paper
scale (scale=1.0) or at a laptop-friendly scale for tests and benches.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.dataset import PlacementSample, RoutabilityDataset
from repro.eda import maps as map_ext
from repro.eda.benchmarks import generate_design
from repro.eda.drc import DrcHotspotLabeler
from repro.eda.placement import sweep_placements
from repro.features.extraction import DEFAULT_FEATURES, FeatureExtractor
from repro.utils.rng import hash_str
from repro.utils.validation import check_positive

PathLike = Union[str, Path]


@dataclass(frozen=True)
class ClientSpec:
    """One row of the paper's Table 2."""

    client_id: int
    suite: str
    train_designs: int
    test_designs: int
    paper_train_placements: int
    paper_test_placements: int

    @property
    def name(self) -> str:
        return f"client{self.client_id}"

    @property
    def total_designs(self) -> int:
        return self.train_designs + self.test_designs


#: The exact client/design assignment of Table 2.
TABLE2_CLIENTS: Tuple[ClientSpec, ...] = (
    ClientSpec(1, "itc99", 4, 2, 462, 230),
    ClientSpec(2, "itc99", 2, 1, 231, 114),
    ClientSpec(3, "itc99", 2, 2, 231, 232),
    ClientSpec(4, "iscas89", 7, 3, 812, 348),
    ClientSpec(5, "iscas89", 7, 3, 812, 348),
    ClientSpec(6, "iscas89", 6, 3, 697, 348),
    ClientSpec(7, "iwls05", 6, 3, 656, 280),
    ClientSpec(8, "iwls05", 7, 3, 742, 329),
    ClientSpec(9, "ispd15", 9, 4, 175, 84),
)

#: Total designs / placements of the paper corpus, used for sanity checks.
PAPER_TOTAL_DESIGNS = sum(spec.total_designs for spec in TABLE2_CLIENTS)
PAPER_TOTAL_PLACEMENTS = sum(
    spec.paper_train_placements + spec.paper_test_placements for spec in TABLE2_CLIENTS
)


@dataclass(frozen=True)
class CorpusConfig:
    """Controls the synthetic corpus generation.

    Attributes
    ----------
    grid_width / grid_height:
        Size of the feature / label grid.
    placement_scale:
        Fraction of the paper's placement counts to generate (1.0 = the full
        7,131-placement corpus; the default keeps benches fast).
    min_placements_per_design:
        Lower bound applied after scaling so every design contributes data.
    features:
        Feature channels extracted for every placement.
    normalization:
        Feature normalization mode (see :class:`FeatureExtractor`).
    base_seed:
        Root seed for design generation and placement sweeps.
    label_seed:
        Seed of the DRC labeler's noise stream.
    """

    grid_width: int = 32
    grid_height: int = 32
    placement_scale: float = 0.05
    min_placements_per_design: int = 2
    features: Tuple[str, ...] = DEFAULT_FEATURES
    normalization: str = "per_sample"
    base_seed: int = 2022
    label_seed: int = 7

    def __post_init__(self):
        check_positive("grid_width", self.grid_width)
        check_positive("grid_height", self.grid_height)
        check_positive("placement_scale", self.placement_scale)
        check_positive("min_placements_per_design", self.min_placements_per_design)

    def placements_for(self, paper_count: int, n_designs: int) -> int:
        """Scaled per-design placement count for a Table 2 cell."""
        scaled_total = max(paper_count * self.placement_scale, n_designs * self.min_placements_per_design)
        return max(self.min_placements_per_design, int(round(scaled_total / n_designs)))

    def cache_key(self) -> str:
        """Stable hash of every field that affects the generated data."""
        payload = json.dumps(
            {
                "grid": [self.grid_width, self.grid_height],
                "scale": self.placement_scale,
                "min_ppd": self.min_placements_per_design,
                "features": list(self.features),
                "normalization": self.normalization,
                "base_seed": self.base_seed,
                "label_seed": self.label_seed,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class ClientData:
    """Data owned by one client: design-disjoint train and test datasets."""

    spec: ClientSpec
    train: RoutabilityDataset
    test: RoutabilityDataset

    @property
    def client_id(self) -> int:
        return self.spec.client_id

    @property
    def num_train_samples(self) -> int:
        return len(self.train)

    @property
    def num_test_samples(self) -> int:
        return len(self.test)

    def summary(self) -> Dict[str, object]:
        return {
            "client": self.spec.name,
            "suite": self.spec.suite,
            "train_designs": self.spec.train_designs,
            "test_designs": self.spec.test_designs,
            "train_placements": self.num_train_samples,
            "test_placements": self.num_test_samples,
        }


class CorpusBuilder:
    """Synthesizes the full 9-client corpus (designs -> placements -> samples)."""

    def __init__(self, config: Optional[CorpusConfig] = None):
        self.config = config if config is not None else CorpusConfig()
        self._extractor = FeatureExtractor(self.config.features, self.config.normalization)
        self._labeler = DrcHotspotLabeler(label_seed=self.config.label_seed)

    @property
    def feature_extractor(self) -> FeatureExtractor:
        return self._extractor

    def build_design_samples(
        self,
        suite: str,
        design_name: str,
        design_seed: int,
        placements_per_design: int,
        sweep_seed: int,
    ) -> List[PlacementSample]:
        """Generate one design and all of its placement samples."""
        design = generate_design(suite, design_name, design_seed)
        placements = sweep_placements(
            design,
            count=placements_per_design,
            grid_width=self.config.grid_width,
            grid_height=self.config.grid_height,
            base_seed=sweep_seed,
        )
        samples = []
        for index, placement in enumerate(placements):
            analysis = map_ext.all_maps(placement)
            features = self._extractor.extract(placement, analysis)
            drc = self._labeler.label(placement, precomputed_maps=analysis)
            samples.append(
                PlacementSample(
                    features=features,
                    label=drc.hotspots,
                    design_name=design_name,
                    suite=suite,
                    placement_index=index,
                )
            )
        return samples

    def build_client(self, spec: ClientSpec) -> ClientData:
        """Synthesize all data owned by one client."""
        config = self.config
        train_ppd = config.placements_for(spec.paper_train_placements, spec.train_designs)
        test_ppd = config.placements_for(spec.paper_test_placements, spec.test_designs)

        train = RoutabilityDataset(name=f"{spec.name}/train")
        test = RoutabilityDataset(name=f"{spec.name}/test")

        for role, count, ppd, target in (
            ("train", spec.train_designs, train_ppd, train),
            ("test", spec.test_designs, test_ppd, test),
        ):
            for design_index in range(count):
                design_name = f"c{spec.client_id}_{spec.suite}_{role}_{design_index:02d}"
                design_seed = int(
                    np.random.SeedSequence(
                        [config.base_seed, spec.client_id, hash_str(role) % (2**31), design_index]
                    ).generate_state(1)[0]
                )
                sweep_seed = design_seed ^ 0x5A5A5A
                samples = self.build_design_samples(
                    spec.suite, design_name, design_seed, ppd, sweep_seed
                )
                target.extend(samples)
        return ClientData(spec=spec, train=train, test=test)

    def build_all(
        self,
        specs: Optional[Sequence[ClientSpec]] = None,
        cache_dir: Optional[PathLike] = None,
    ) -> List[ClientData]:
        """Synthesize (or load from cache) the data of every client."""
        specs = list(specs) if specs is not None else list(TABLE2_CLIENTS)
        clients = []
        for spec in specs:
            cached = self._load_cached(spec, cache_dir) if cache_dir else None
            if cached is not None:
                clients.append(cached)
                continue
            client = self.build_client(spec)
            if cache_dir:
                self._store_cached(client, cache_dir)
            clients.append(client)
        return clients

    # -- caching ----------------------------------------------------------------
    def _cache_paths(self, spec: ClientSpec, cache_dir: PathLike) -> Tuple[Path, Path]:
        root = Path(cache_dir) / self.config.cache_key()
        return (root / f"{spec.name}_train.npz", root / f"{spec.name}_test.npz")

    def _load_cached(self, spec: ClientSpec, cache_dir: PathLike) -> Optional[ClientData]:
        train_path, test_path = self._cache_paths(spec, cache_dir)
        if not (train_path.exists() and test_path.exists()):
            return None
        return ClientData(
            spec=spec,
            train=RoutabilityDataset.load(train_path),
            test=RoutabilityDataset.load(test_path),
        )

    def _store_cached(self, client: ClientData, cache_dir: PathLike) -> None:
        train_path, test_path = self._cache_paths(client.spec, cache_dir)
        client.train.save(train_path)
        client.test.save(test_path)


def build_table2_corpus(
    config: Optional[CorpusConfig] = None,
    specs: Optional[Sequence[ClientSpec]] = None,
    cache_dir: Optional[PathLike] = None,
) -> List[ClientData]:
    """Build the 9-client corpus of Table 2 under ``config``."""
    return CorpusBuilder(config).build_all(specs, cache_dir)


def table2_rows(clients: Sequence[ClientData]) -> List[Dict[str, object]]:
    """Format generated clients as rows comparable to the paper's Table 2."""
    return [client.summary() for client in clients]
