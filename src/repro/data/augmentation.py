"""Geometric data augmentation for routability samples.

Routability features and DRC-hotspot labels live on a regular grid over the
die, and the physics is (approximately) equivariant under the symmetries of
that grid: rotating or mirroring a placement rotates/mirrors its congestion
and its violations with it.  Augmenting with the dihedral group D4 (the four
rotations and four reflections of a square) is therefore the standard
cheap way to stretch a small routability corpus — the paper's own corpus is
limited by what each company owns, which is exactly the regime where
augmentation helps local baselines and federated clients alike.

Two interfaces are provided:

* :func:`augment_dataset` materializes transformed copies of every sample
  (deterministic, used when building a corpus), and
* :class:`RandomAugmenter` applies a random symmetry per call (used inside a
  training loop for on-the-fly augmentation).

Both apply the *same* transform to the feature stack and the label so the
pair stays consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import PlacementSample, RoutabilityDataset
from repro.utils.rng import new_rng

#: The eight symmetries of the square: (number of 90-degree rotations, flip).
D4_SYMMETRIES: Tuple[Tuple[int, bool], ...] = (
    (0, False),
    (1, False),
    (2, False),
    (3, False),
    (0, True),
    (1, True),
    (2, True),
    (3, True),
)

#: The identity transform.
IDENTITY: Tuple[int, bool] = (0, False)


def apply_symmetry(array: np.ndarray, rotations: int, flip: bool) -> np.ndarray:
    """Apply a D4 symmetry to the trailing two (spatial) axes of ``array``.

    ``rotations`` counts 90-degree counter-clockwise rotations (0-3); ``flip``
    mirrors along the last axis *before* rotating.  Works for both ``(H, W)``
    labels and ``(C, H, W)`` feature stacks.
    """
    if array.ndim < 2:
        raise ValueError(f"array must have at least 2 dimensions, got {array.ndim}")
    rotations = int(rotations) % 4
    result = np.asarray(array)
    if flip:
        result = np.flip(result, axis=-1)
    if rotations:
        result = np.rot90(result, k=rotations, axes=(-2, -1))
    return np.ascontiguousarray(result)


def symmetry_name(rotations: int, flip: bool) -> str:
    """Human-readable name of a D4 element (used in sample provenance)."""
    base = f"rot{(int(rotations) % 4) * 90}"
    return f"{base}_flip" if flip else base


def augment_sample(sample: PlacementSample, rotations: int, flip: bool) -> PlacementSample:
    """A new sample with the symmetry applied consistently to features and label.

    Non-square grids only admit 180-degree rotations; requesting a 90/270
    rotation on a non-square sample raises rather than silently transposing
    the aspect ratio.
    """
    height, width = sample.grid_shape
    if rotations % 2 == 1 and height != width:
        raise ValueError(
            f"90-degree rotations require a square grid, got {height}x{width}"
        )
    return PlacementSample(
        features=apply_symmetry(sample.features, rotations, flip),
        label=apply_symmetry(sample.label, rotations, flip),
        design_name=sample.design_name,
        suite=sample.suite,
        placement_index=sample.placement_index,
    )


def augment_dataset(
    dataset: RoutabilityDataset,
    symmetries: Sequence[Tuple[int, bool]] = D4_SYMMETRIES,
    include_original: bool = False,
    name: Optional[str] = None,
) -> RoutabilityDataset:
    """Materialize transformed copies of every sample in ``dataset``.

    Parameters
    ----------
    symmetries:
        The D4 elements to apply (defaults to all eight).  The identity is
        skipped unless ``include_original`` is ``False`` and it is the only
        way the original would appear.
    include_original:
        When ``True`` the untransformed samples are also copied into the
        result even if the identity is not among ``symmetries``.
    """
    if not symmetries:
        raise ValueError("at least one symmetry is required")
    seen: List[Tuple[int, bool]] = []
    for rotations, flip in symmetries:
        element = (int(rotations) % 4, bool(flip))
        if element not in seen:
            seen.append(element)

    result = RoutabilityDataset(name=name if name is not None else f"{dataset.name}/augmented")
    for sample in dataset:
        if include_original and IDENTITY not in seen:
            result.add(augment_sample(sample, *IDENTITY))
        for rotations, flip in seen:
            result.add(augment_sample(sample, rotations, flip))
    return result


class RandomAugmenter:
    """Applies a random D4 symmetry, for on-the-fly training augmentation."""

    def __init__(
        self,
        symmetries: Sequence[Tuple[int, bool]] = D4_SYMMETRIES,
        seed: int = 0,
        rng: Optional[np.random.Generator] = None,
    ):
        if not symmetries:
            raise ValueError("at least one symmetry is required")
        self.symmetries: List[Tuple[int, bool]] = [(int(r) % 4, bool(f)) for r, f in symmetries]
        self._rng = rng if rng is not None else new_rng(seed)

    def __call__(self, sample: PlacementSample) -> PlacementSample:
        index = int(self._rng.integers(0, len(self.symmetries)))
        rotations, flip = self.symmetries[index]
        return augment_sample(sample, rotations, flip)

    def augment_batch(
        self, features: np.ndarray, labels: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Apply an independent random symmetry to every sample of a batch.

        ``features`` is ``(N, C, H, W)``, ``labels`` is ``(N, H, W)`` or
        ``(N, 1, H, W)``; the same transform is used for a sample's features
        and label.
        """
        features = np.asarray(features)
        labels = np.asarray(labels)
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels must have the same batch size")
        out_features = np.empty_like(features)
        out_labels = np.empty_like(labels)
        for index in range(features.shape[0]):
            choice = int(self._rng.integers(0, len(self.symmetries)))
            rotations, flip = self.symmetries[choice]
            out_features[index] = apply_symmetry(features[index], rotations, flip)
            out_labels[index] = apply_symmetry(labels[index], rotations, flip)
        return out_features, out_labels
