"""Experiment configurations, runner, and table formatting."""

from repro.experiments.config import (
    PRESETS,
    TABLE_ALGORITHMS,
    ExperimentConfig,
    default,
    paper,
    preset,
    smoke,
)
from repro.experiments.report import (
    RESULT_DESCRIPTIONS,
    comparison_markdown,
    load_result_texts,
    results_report,
    write_results_report,
)
from repro.experiments.runner import (
    AlgorithmOutcome,
    ExperimentResult,
    ExperimentRunner,
    ModelBuilder,
    run_experiment,
)
from repro.experiments.tables import (
    PAPER_TABLE1_FLNET_ARCHITECTURE,
    PAPER_TABLE2_SETUP,
    PAPER_TABLE3_FLNET,
    PAPER_TABLE4_ROUTENET,
    PAPER_TABLE5_PROS,
    PAPER_TABLES,
    ROW_DISPLAY_NAMES,
    comparison_table,
    format_rows,
    paper_average,
)

__all__ = [
    "ExperimentConfig",
    "TABLE_ALGORITHMS",
    "PRESETS",
    "paper",
    "default",
    "smoke",
    "preset",
    "ExperimentRunner",
    "ExperimentResult",
    "AlgorithmOutcome",
    "ModelBuilder",
    "run_experiment",
    "ROW_DISPLAY_NAMES",
    "PAPER_TABLES",
    "PAPER_TABLE1_FLNET_ARCHITECTURE",
    "PAPER_TABLE2_SETUP",
    "PAPER_TABLE3_FLNET",
    "PAPER_TABLE4_ROUTENET",
    "PAPER_TABLE5_PROS",
    "paper_average",
    "format_rows",
    "comparison_table",
    "RESULT_DESCRIPTIONS",
    "load_result_texts",
    "comparison_markdown",
    "results_report",
    "write_results_report",
]
