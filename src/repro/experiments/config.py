"""Experiment configurations and presets.

An :class:`ExperimentConfig` bundles everything needed to regenerate one of
the paper's result tables: the corpus configuration (Table 2), the
decentralized-training hyper-parameters (Section 5.1), the model under test
(FLNet / RouteNet / PROS), and the list of training algorithms (the rows of
Tables 3-5).

Three presets are provided:

``paper``
    The paper's exact hyper-parameters and corpus scale.  Running this in
    NumPy takes many hours; it exists to document the target configuration.
``default``
    A scaled-down configuration that regenerates every table in minutes on a
    laptop while preserving the comparative structure of the results.
``smoke``
    A seconds-scale configuration for integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.data.clients import ClientSpec, CorpusConfig, TABLE2_CLIENTS
from repro.fl.aggregation import AGGREGATION_CHOICES
from repro.fl.config import FLConfig
from repro.fl.execution import BACKENDS as EXECUTION_BACKENDS
from repro.fl.scheduling import (
    AVAILABILITY_CHOICES,
    ROUND_POLICY_CHOICES,
    SAMPLER_CHOICES,
    STRAGGLER_CHOICES,
    scheduling_requested,
)
from repro.fl.faults import resilience_requested as _resilience_requested
from repro.fl.transport import COMPRESSION_CHOICES
from repro.models.registry import available_models
from repro.utils.threadpools import check_blas_policy

#: Sentinel for "keep the current value" in :meth:`ExperimentConfig.with_execution`.
_KEEP = object()

#: Global-state algorithms that can train over a virtualized population
#: (lazy client construction; one shared global model, no per-client state).
POPULATION_ALGORITHMS: Tuple[str, ...] = ("fedavg", "fedprox", "fedavgm", "dp_fedprox")

#: The algorithm rows of Tables 3-5, in the paper's order.
TABLE_ALGORITHMS: Tuple[str, ...] = (
    "local",
    "centralized",
    "fedprox",
    "fedprox_lg",
    "ifca",
    "fedprox_finetune",
    "assigned_clustering",
    "fedprox_alpha",
)


@dataclass
class ExperimentConfig:
    """Everything needed to run one table-style experiment.

    Execution options
    -----------------
    ``backend`` selects where each round's client updates run: ``"serial"``
    (in-process, the default), ``"process"`` (a warm pool of ``workers``
    processes, spawned once per run), ``"thread"`` (a warm thread pool —
    NumPy releases the GIL inside the conv/GEMM kernels, so client steps
    overlap with zero pickling), or ``None`` / ``"auto"`` to infer from
    ``workers``.  Any backend produces bit-identical results for the same
    seed.  The local-training arithmetic dtype is ``fl.compute_dtype``
    (``with_execution(compute_dtype="float32")`` opts into the fast path).
    ``checkpoint_dir`` enables per-round checkpoint/resume for the
    global-state algorithms (one subdirectory per algorithm).

    Transport options
    -----------------
    ``compression`` routes every broadcast and upload through a wire-codec
    channel with measured byte accounting: ``None`` (raw in-process states,
    no accounting), ``"none"`` (bit-exact float64 identity, measured),
    ``"float32"`` / ``"float16"`` (cast), ``"quantize"``
    (``compression_bits``-bit packed quantization + DEFLATE, delta-encoded
    uploads), or ``"topk"`` (top-``topk_fraction`` sparsified delta uploads
    with error feedback).  Serial and process execution stay bit-identical
    under every setting.

    Scheduling options
    ------------------
    ``participation`` / ``clients_per_round`` select a per-round cohort
    (``sampler`` picks the rule: uniform or sample-count-weighted);
    ``availability`` models which clients are reachable (``always``,
    ``bernoulli``, day/night cycles at ``availability_rate`` duty);
    ``straggler_model`` assigns simulated round-trip latencies; and
    ``round_policy`` decides what the server does with them: ``sync``
    (barrier), ``deadline`` (drop updates later than ``deadline`` virtual
    seconds, over-selecting the cohort by ``over_selection``), or
    ``fedbuff`` (buffered-asynchronous aggregation with ``buffer_size``
    staleness-weighted updates per model version).  All defaults off: the
    default configuration runs the full cohort synchronously and is
    bit-identical to pre-scheduling behavior.

    Fault-tolerance options
    -----------------------
    ``quorum`` commits each round once that fraction of the cohort has
    delivered an update (clients that exhaust their retries are dropped
    permanently with the aggregation weights renormalized; a sub-quorum
    round checkpoints and raises :class:`repro.fl.faults.QuorumFailure`).
    ``max_retries`` / ``task_timeout`` shape the supervised retry loop, and
    the ``fault_*_rate`` knobs inject deterministic seeded faults
    (crash / exception / timeout / payload corruption) for chaos testing.
    All defaults off: quorum 1 with no faults runs the pre-resilience code
    path bit-identically.
    """

    name: str
    model: str = "flnet"
    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    fl: FLConfig = field(default_factory=FLConfig)
    algorithms: Tuple[str, ...] = TABLE_ALGORITHMS
    client_specs: Tuple[ClientSpec, ...] = TABLE2_CLIENTS
    model_kwargs: Dict[str, object] = field(default_factory=dict)
    seed: int = 0
    backend: Optional[str] = None
    workers: Optional[int] = None
    blas_threads: object = "auto"
    checkpoint_dir: Optional[str] = None
    compression: Optional[str] = None
    compression_bits: int = 8
    topk_fraction: float = 0.1
    participation: Optional[float] = None
    clients_per_round: Optional[int] = None
    sampler: Optional[str] = None
    availability: Optional[str] = None
    availability_rate: float = 0.9
    straggler_model: Optional[str] = None
    round_policy: str = "sync"
    deadline: Optional[float] = None
    over_selection: float = 1.0
    buffer_size: int = 2
    population: Optional[int] = None
    aggregation: str = "gemv"
    quorum: float = 1.0
    max_retries: Optional[int] = None
    task_timeout: Optional[float] = None
    fault_crash_rate: float = 0.0
    fault_exception_rate: float = 0.0
    fault_timeout_rate: float = 0.0
    fault_corruption_rate: float = 0.0
    # Wire-backend options (used only when backend == "wire"; see
    # repro.fl.net and the `repro serve` / `repro join` commands).
    wire_host: str = "127.0.0.1"
    wire_port: int = 0
    heartbeat_interval: float = 2.0
    client_timeout: float = 10.0
    wire_journal_dir: Optional[str] = None
    wire_fault_disconnect_rate: float = 0.0
    wire_fault_delay_rate: float = 0.0
    wire_fault_corrupt_rate: float = 0.0
    wire_delay_seconds: float = 0.05

    def __post_init__(self):
        if self.model.lower() not in available_models():
            raise ValueError(
                f"unknown model {self.model!r}; available: {available_models()}"
            )
        if not self.algorithms:
            raise ValueError("at least one algorithm is required")
        if self.backend is not None and self.backend not in ("auto",) + tuple(EXECUTION_BACKENDS):
            raise ValueError(
                f"unknown execution backend {self.backend!r}; "
                f"available: {sorted(EXECUTION_BACKENDS)} (or 'auto')"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be positive, got {self.workers}")
        check_blas_policy(self.blas_threads)
        if self.backend == "serial" and self.workers is not None and self.workers > 1:
            raise ValueError(
                f"backend 'serial' cannot use {self.workers} workers; "
                "drop the workers option or choose the 'process' backend"
            )
        if self.compression is not None and self.compression not in COMPRESSION_CHOICES:
            raise ValueError(
                f"unknown compression {self.compression!r}; "
                f"available: {COMPRESSION_CHOICES}"
            )
        if not 1 <= self.compression_bits <= 16:
            raise ValueError(
                f"compression_bits must be between 1 and 16, got {self.compression_bits}"
            )
        if not 0.0 < self.topk_fraction <= 1.0:
            raise ValueError(
                f"topk_fraction must be in (0, 1], got {self.topk_fraction}"
            )
        if self.participation is not None and not 0.0 < self.participation <= 1.0:
            raise ValueError(
                f"participation must be in (0, 1], got {self.participation}"
            )
        if self.clients_per_round is not None and self.clients_per_round < 1:
            raise ValueError(
                f"clients_per_round must be positive, got {self.clients_per_round}"
            )
        if self.sampler is not None and self.sampler not in SAMPLER_CHOICES:
            raise ValueError(
                f"unknown client sampler {self.sampler!r}; available: {SAMPLER_CHOICES}"
            )
        if self.availability is not None and self.availability not in AVAILABILITY_CHOICES:
            raise ValueError(
                f"unknown availability model {self.availability!r}; "
                f"available: {AVAILABILITY_CHOICES}"
            )
        if not 0.0 < self.availability_rate <= 1.0:
            raise ValueError(
                f"availability_rate must be in (0, 1], got {self.availability_rate}"
            )
        if self.straggler_model is not None and self.straggler_model not in STRAGGLER_CHOICES:
            raise ValueError(
                f"unknown straggler model {self.straggler_model!r}; "
                f"available: {STRAGGLER_CHOICES}"
            )
        if self.round_policy not in ROUND_POLICY_CHOICES:
            raise ValueError(
                f"unknown round policy {self.round_policy!r}; "
                f"available: {ROUND_POLICY_CHOICES}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.round_policy == "deadline" and self.deadline is None:
            raise ValueError(
                "the deadline round policy needs a positive deadline (virtual seconds)"
            )
        if self.round_policy == "fedbuff":
            # Fail at configuration time, not after earlier algorithms of the
            # experiment have already trained for minutes.
            from repro.fl import ALGORITHMS

            blocked = [
                name
                for name in self.algorithms
                if name in ALGORITHMS
                and ALGORITHMS[name].supports_scheduling
                and not ALGORITHMS[name].supports_fedbuff
            ]
            if blocked:
                raise ValueError(
                    f"round policy 'fedbuff' is not supported by {blocked}; "
                    "choose sync or deadline, or drop those algorithms "
                    "(fedbuff needs delta-style aggregation: fedavg / fedprox / "
                    "fedprox_finetune)"
                )
        if self.over_selection < 1.0:
            raise ValueError(
                f"over_selection must be >= 1, got {self.over_selection}"
            )
        if self.buffer_size < 1:
            raise ValueError(f"buffer_size must be positive, got {self.buffer_size}")
        if self.aggregation not in AGGREGATION_CHOICES:
            raise ValueError(
                f"unknown aggregation mode {self.aggregation!r}; "
                f"available: {AGGREGATION_CHOICES}"
            )
        if not 0.0 < self.quorum <= 1.0:
            raise ValueError(f"quorum must be in (0, 1], got {self.quorum}")
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, got {self.task_timeout}")
        fault_rates = {
            "fault_crash_rate": self.fault_crash_rate,
            "fault_exception_rate": self.fault_exception_rate,
            "fault_timeout_rate": self.fault_timeout_rate,
            "fault_corruption_rate": self.fault_corruption_rate,
        }
        for label, rate in fault_rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {rate}")
        if sum(fault_rates.values()) > 1.0 + 1e-12:
            raise ValueError(
                f"fault rates must sum to at most 1, got {sum(fault_rates.values())}"
            )
        if not 0 <= self.wire_port <= 65535:
            raise ValueError(f"wire_port must be in [0, 65535], got {self.wire_port}")
        if self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, got {self.heartbeat_interval}"
            )
        if self.client_timeout <= self.heartbeat_interval:
            raise ValueError(
                f"client_timeout ({self.client_timeout}) must exceed "
                f"heartbeat_interval ({self.heartbeat_interval}); liveness needs "
                "at least one missed probe"
            )
        if self.wire_delay_seconds < 0:
            raise ValueError(
                f"wire_delay_seconds must be >= 0, got {self.wire_delay_seconds}"
            )
        wire_rates = {
            "wire_fault_disconnect_rate": self.wire_fault_disconnect_rate,
            "wire_fault_delay_rate": self.wire_fault_delay_rate,
            "wire_fault_corrupt_rate": self.wire_fault_corrupt_rate,
        }
        for label, rate in wire_rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {rate}")
        if sum(wire_rates.values()) > 1.0 + 1e-12:
            raise ValueError(
                f"wire fault rates must sum to at most 1, got {sum(wire_rates.values())}"
            )
        if self.backend == "wire":
            if self.workers is not None and self.workers > 1:
                raise ValueError(
                    "backend 'wire' runs client tasks in remote joiner processes; "
                    "drop the workers option"
                )
            if self.population is not None:
                raise ValueError(
                    "backend 'wire' needs an eager client roster; population "
                    "virtualization is not supported over the wire"
                )
        if self.resilience_requested and self.round_policy == "fedbuff":
            raise ValueError(
                "fault tolerance (quorum / fault injection / retries) is not "
                "supported with the fedbuff round policy; choose sync or deadline"
            )
        if self.population is not None:
            if self.population < 1:
                raise ValueError(f"population must be positive, got {self.population}")
            if self.participation is None and self.clients_per_round is None:
                raise ValueError(
                    "a population needs partial participation; set clients_per_round "
                    "(or participation) so the sampler selects a per-round cohort"
                )
            unsupported = [
                name for name in self.algorithms if name not in POPULATION_ALGORITHMS
            ]
            if unsupported:
                raise ValueError(
                    f"population runs support only the global-state algorithms "
                    f"{sorted(POPULATION_ALGORITHMS)}; drop {unsupported}"
                )

    @property
    def scheduling_requested(self) -> bool:
        """Whether any scheduling option departs from the defaults.

        Delegates to :func:`repro.fl.scheduling.scheduling_requested` — the
        same predicate :func:`~repro.fl.scheduling.create_scheduler` uses —
        so "a scheduler will exist" and "scheduling is reported" agree by
        construction.
        """
        return scheduling_requested(
            participation=self.participation,
            clients_per_round=self.clients_per_round,
            sampler=self.sampler,
            availability=self.availability,
            straggler=self.straggler_model,
            round_policy=self.round_policy,
        )

    @property
    def resilience_requested(self) -> bool:
        """Whether any fault-tolerance option departs from the defaults.

        Delegates to :func:`repro.fl.faults.resilience_requested` — the same
        predicate :func:`~repro.fl.faults.create_resilience` uses — so "a
        resilience manager will exist" and "resilience is reported" agree by
        construction.
        """
        return _resilience_requested(
            quorum=self.quorum,
            max_retries=self.max_retries,
            task_timeout=self.task_timeout,
            crash_rate=self.fault_crash_rate,
            exception_rate=self.fault_exception_rate,
            timeout_rate=self.fault_timeout_rate,
            corruption_rate=self.fault_corruption_rate,
        )

    def with_resilience(
        self,
        quorum: object = _KEEP,
        max_retries: object = _KEEP,
        task_timeout: object = _KEEP,
        fault_crash_rate: object = _KEEP,
        fault_exception_rate: object = _KEEP,
        fault_timeout_rate: object = _KEEP,
        fault_corruption_rate: object = _KEEP,
    ) -> "ExperimentConfig":
        """A copy of this configuration with different fault-tolerance options.

        ``quorum`` is the fraction of the per-round cohort that must deliver
        an update before the round commits (permanently failed clients are
        dropped and the aggregation weights renormalized); the ``fault_*``
        rates inject deterministic seeded faults for chaos testing; and
        ``max_retries`` / ``task_timeout`` control the supervised retry loop.
        Omitted options keep their current value; the all-defaults
        configuration (quorum 1, no faults, no retry overrides) runs the
        pre-resilience code path bit-identically.
        """
        return replace(
            self,
            quorum=self.quorum if quorum is _KEEP else quorum,
            max_retries=self.max_retries if max_retries is _KEEP else max_retries,
            task_timeout=self.task_timeout if task_timeout is _KEEP else task_timeout,
            fault_crash_rate=(
                self.fault_crash_rate if fault_crash_rate is _KEEP else fault_crash_rate
            ),
            fault_exception_rate=(
                self.fault_exception_rate
                if fault_exception_rate is _KEEP
                else fault_exception_rate
            ),
            fault_timeout_rate=(
                self.fault_timeout_rate
                if fault_timeout_rate is _KEEP
                else fault_timeout_rate
            ),
            fault_corruption_rate=(
                self.fault_corruption_rate
                if fault_corruption_rate is _KEEP
                else fault_corruption_rate
            ),
        )

    def with_wire(
        self,
        wire_host: object = _KEEP,
        wire_port: object = _KEEP,
        heartbeat_interval: object = _KEEP,
        client_timeout: object = _KEEP,
        wire_journal_dir: object = _KEEP,
        wire_fault_disconnect_rate: object = _KEEP,
        wire_fault_delay_rate: object = _KEEP,
        wire_fault_corrupt_rate: object = _KEEP,
        wire_delay_seconds: object = _KEEP,
    ) -> "ExperimentConfig":
        """A copy of this configuration with different wire-backend options.

        These only take effect when ``backend == "wire"`` (set it via
        :meth:`with_execution`): the bind address, heartbeat cadence and
        liveness deadline, the on-disk journal directory backing
        reconnect-with-resume (a temporary directory when ``None``), and the
        seeded frame-level fault rates for chaos runs.  Omitted options keep
        their current value.
        """
        return replace(
            self,
            wire_host=self.wire_host if wire_host is _KEEP else wire_host,
            wire_port=self.wire_port if wire_port is _KEEP else wire_port,
            heartbeat_interval=(
                self.heartbeat_interval if heartbeat_interval is _KEEP else heartbeat_interval
            ),
            client_timeout=(
                self.client_timeout if client_timeout is _KEEP else client_timeout
            ),
            wire_journal_dir=(
                self.wire_journal_dir if wire_journal_dir is _KEEP else wire_journal_dir
            ),
            wire_fault_disconnect_rate=(
                self.wire_fault_disconnect_rate
                if wire_fault_disconnect_rate is _KEEP
                else wire_fault_disconnect_rate
            ),
            wire_fault_delay_rate=(
                self.wire_fault_delay_rate
                if wire_fault_delay_rate is _KEEP
                else wire_fault_delay_rate
            ),
            wire_fault_corrupt_rate=(
                self.wire_fault_corrupt_rate
                if wire_fault_corrupt_rate is _KEEP
                else wire_fault_corrupt_rate
            ),
            wire_delay_seconds=(
                self.wire_delay_seconds if wire_delay_seconds is _KEEP else wire_delay_seconds
            ),
        )

    def with_execution(
        self,
        backend: object = _KEEP,
        workers: object = _KEEP,
        blas_threads: object = _KEEP,
        checkpoint_dir: object = _KEEP,
        compute_dtype: object = _KEEP,
    ) -> "ExperimentConfig":
        """A copy of this configuration with different execution options.

        Omitted options keep their current value; pass ``None`` explicitly to
        reset one (e.g. ``with_execution(checkpoint_dir=None)`` disables
        checkpointing without touching the backend choice).  ``compute_dtype``
        selects the local-training arithmetic dtype and lives on the nested
        :class:`~repro.fl.FLConfig` (``None`` resets to float64).
        ``blas_threads`` is the BLAS thread policy handed to the execution
        backend (``"auto"``, an exact count, or ``None`` to leave the BLAS
        pool unmanaged).
        """
        fl = self.fl
        if compute_dtype is not _KEEP:
            fl = replace(fl, compute_dtype=compute_dtype if compute_dtype is not None else "float64")
        return replace(
            self,
            fl=fl,
            backend=self.backend if backend is _KEEP else backend,
            workers=self.workers if workers is _KEEP else workers,
            blas_threads=self.blas_threads if blas_threads is _KEEP else blas_threads,
            checkpoint_dir=self.checkpoint_dir if checkpoint_dir is _KEEP else checkpoint_dir,
        )

    def with_transport(
        self,
        compression: object = _KEEP,
        compression_bits: object = _KEEP,
        topk_fraction: object = _KEEP,
    ) -> "ExperimentConfig":
        """A copy of this configuration with different transport options.

        Omitted options keep their current value; pass ``None`` explicitly
        as ``compression`` to disable the transport layer.
        """
        return replace(
            self,
            compression=self.compression if compression is _KEEP else compression,
            compression_bits=(
                self.compression_bits if compression_bits is _KEEP else compression_bits
            ),
            topk_fraction=self.topk_fraction if topk_fraction is _KEEP else topk_fraction,
        )

    def with_scheduling(
        self,
        participation: object = _KEEP,
        clients_per_round: object = _KEEP,
        sampler: object = _KEEP,
        availability: object = _KEEP,
        availability_rate: object = _KEEP,
        straggler_model: object = _KEEP,
        round_policy: object = _KEEP,
        deadline: object = _KEEP,
        over_selection: object = _KEEP,
        buffer_size: object = _KEEP,
    ) -> "ExperimentConfig":
        """A copy of this configuration with different scheduling options.

        Omitted options keep their current value; pass ``None`` explicitly
        to reset one (e.g. ``with_scheduling(participation=None)`` restores
        full participation).
        """
        return replace(
            self,
            participation=self.participation if participation is _KEEP else participation,
            clients_per_round=(
                self.clients_per_round if clients_per_round is _KEEP else clients_per_round
            ),
            sampler=self.sampler if sampler is _KEEP else sampler,
            availability=self.availability if availability is _KEEP else availability,
            availability_rate=(
                self.availability_rate if availability_rate is _KEEP else availability_rate
            ),
            straggler_model=(
                self.straggler_model if straggler_model is _KEEP else straggler_model
            ),
            round_policy=self.round_policy if round_policy is _KEEP else round_policy,
            deadline=self.deadline if deadline is _KEEP else deadline,
            over_selection=self.over_selection if over_selection is _KEEP else over_selection,
            buffer_size=self.buffer_size if buffer_size is _KEEP else buffer_size,
        )

    def with_population(
        self,
        population: object = _KEEP,
        aggregation: object = _KEEP,
    ) -> "ExperimentConfig":
        """A copy of this configuration with different population options.

        ``population`` virtualizes the client roster to that many lazily
        constructed clients (each reusing one of the base data partitions
        round-robin); ``aggregation`` selects the server fold
        (``gemv`` / ``streaming`` / ``sharded`` — see
        :mod:`repro.fl.aggregation`).  Omitted options keep their current
        value; pass ``None`` as ``population`` to restore the eager roster.
        """
        return replace(
            self,
            population=self.population if population is _KEEP else population,
            aggregation=self.aggregation if aggregation is _KEEP else aggregation,
        )

    def with_model(self, model: str, **model_kwargs) -> "ExperimentConfig":
        """A copy of this configuration targeting a different estimator."""
        return replace(
            self,
            name=f"{self.name.split(':')[0]}:{model}",
            model=model,
            model_kwargs=dict(model_kwargs) if model_kwargs else dict(self.model_kwargs),
        )

    def with_algorithms(self, algorithms: Sequence[str]) -> "ExperimentConfig":
        """A copy of this configuration running only the given algorithms."""
        return replace(self, algorithms=tuple(algorithms))


def paper(model: str = "flnet", seed: int = 0) -> ExperimentConfig:
    """The paper's full-scale configuration (Section 5.1 hyper-parameters)."""
    return ExperimentConfig(
        name=f"paper:{model}",
        model=model,
        corpus=CorpusConfig(
            grid_width=32,
            grid_height=32,
            placement_scale=1.0,
            min_placements_per_design=4,
            base_seed=2022,
        ),
        fl=FLConfig(seed=seed),
        seed=seed,
    )


def default(model: str = "flnet", seed: int = 0) -> ExperimentConfig:
    """The laptop-scale configuration used by the benchmark harness.

    Rounds, steps, and dataset size are reduced by roughly two orders of
    magnitude relative to the paper; the learning rate is raised accordingly
    and the centralized baseline receives a proportionally larger step budget
    so it remains the empirical upper bound it is meant to be.
    """
    fl = FLConfig(
        rounds=3,
        local_steps=6,
        finetune_steps=30,
        learning_rate=2e-3,
        batch_size=4,
        centralized_steps=72,
        local_steps_total=24,
        ifca_eval_batches=1,
        seed=seed,
    )
    corpus = CorpusConfig(
        grid_width=16,
        grid_height=16,
        placement_scale=0.02,
        min_placements_per_design=2,
        base_seed=2022,
    )
    return ExperimentConfig(name=f"default:{model}", model=model, corpus=corpus, fl=fl, seed=seed)


def smoke(model: str = "flnet", seed: int = 0) -> ExperimentConfig:
    """A seconds-scale configuration for integration tests.

    Uses a reduced client roster (one client per benchmark suite) and very
    small training budgets; it exercises every code path without trying to
    produce meaningful accuracy numbers.
    """
    specs = (
        ClientSpec(1, "itc99", 2, 1, 8, 4),
        ClientSpec(2, "iscas89", 2, 1, 8, 4),
        ClientSpec(3, "iwls05", 2, 1, 8, 4),
    )
    fl = FLConfig(
        rounds=2,
        local_steps=2,
        finetune_steps=4,
        learning_rate=5e-3,
        batch_size=2,
        num_clusters=2,
        assigned_clusters=((1, 0), (2, 1), (3, 1)),
        ifca_eval_batches=1,
        seed=seed,
    )
    corpus = CorpusConfig(
        grid_width=16,
        grid_height=16,
        placement_scale=0.01,
        min_placements_per_design=2,
        base_seed=7,
    )
    return ExperimentConfig(
        name=f"smoke:{model}",
        model=model,
        corpus=corpus,
        fl=fl,
        client_specs=specs,
        seed=seed,
    )


PRESETS = {"paper": paper, "default": default, "smoke": smoke}


def preset(name: str, model: str = "flnet", seed: int = 0) -> ExperimentConfig:
    """Look up a preset by name (``paper``, ``default``, or ``smoke``)."""
    if name not in PRESETS:
        raise ValueError(f"unknown preset {name!r}; available: {sorted(PRESETS)}")
    return PRESETS[name](model=model, seed=seed)
