"""Table formatting and the paper's reference numbers.

The constants below hold the exact numbers reported in Tables 3, 4, and 5 of
the paper so that benches and EXPERIMENTS.md can print measured results side
by side with the published ones.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.fl.evaluation import EvaluationRow

#: Display names of the algorithm rows, in the paper's wording.
ROW_DISPLAY_NAMES: Dict[str, str] = {
    "local": "Local Average (b1 to b9)",
    "centralized": "Training Centrally on All Data",
    "fedavg": "FedAvg",
    "fedprox": "FedProx",
    "fedprox_lg": "FedProx-LG",
    "ifca": "IFCA",
    "fedprox_finetune": "FedProx + Fine-tuning",
    "assigned_clustering": "Assigned Clustering",
    "fedprox_alpha": "FedProx + alpha-Portion Sync",
}

#: Table 3 of the paper: FLNet, ROC AUC per client and average.
PAPER_TABLE3_FLNET: Dict[str, List[float]] = {
    "local": [0.76, 0.75, 0.71, 0.72, 0.67, 0.70, 0.76, 0.64, 0.82, 0.72],
    "centralized": [0.87, 0.87, 0.77, 0.80, 0.75, 0.77, 0.82, 0.70, 0.92, 0.81],
    "fedprox": [0.82, 0.78, 0.73, 0.75, 0.72, 0.74, 0.82, 0.69, 0.96, 0.78],
    "fedprox_lg": [0.77, 0.61, 0.65, 0.65, 0.60, 0.69, 0.77, 0.63, 0.93, 0.70],
    "ifca": [0.83, 0.79, 0.73, 0.76, 0.71, 0.75, 0.82, 0.69, 0.87, 0.77],
    "fedprox_finetune": [0.84, 0.89, 0.79, 0.78, 0.72, 0.75, 0.82, 0.72, 0.90, 0.80],
    "assigned_clustering": [0.81, 0.86, 0.75, 0.76, 0.72, 0.75, 0.81, 0.70, 0.88, 0.78],
    "fedprox_alpha": [0.82, 0.79, 0.73, 0.76, 0.72, 0.75, 0.81, 0.69, 0.90, 0.78],
}

#: Table 4 of the paper: RouteNet.
PAPER_TABLE4_ROUTENET: Dict[str, List[float]] = {
    "local": [0.76, 0.76, 0.71, 0.73, 0.68, 0.71, 0.75, 0.64, 0.78, 0.73],
    "centralized": [0.86, 0.88, 0.79, 0.82, 0.81, 0.77, 0.82, 0.75, 0.94, 0.83],
    "fedprox": [0.63, 0.83, 0.71, 0.72, 0.66, 0.67, 0.63, 0.57, 0.42, 0.65],
    "fedprox_lg": [0.60, 0.55, 0.57, 0.50, 0.51, 0.49, 0.54, 0.52, 0.46, 0.53],
    "ifca": [0.46, 0.28, 0.35, 0.37, 0.39, 0.44, 0.43, 0.43, 0.71, 0.43],
    "fedprox_finetune": [0.83, 0.86, 0.76, 0.75, 0.74, 0.75, 0.81, 0.72, 0.90, 0.79],
    "assigned_clustering": [0.70, 0.85, 0.74, 0.65, 0.64, 0.65, 0.49, 0.46, 0.89, 0.67],
    "fedprox_alpha": [0.66, 0.57, 0.61, 0.57, 0.54, 0.58, 0.68, 0.58, 0.72, 0.61],
}

#: Table 5 of the paper: PROS.
PAPER_TABLE5_PROS: Dict[str, List[float]] = {
    "local": [0.65, 0.63, 0.61, 0.61, 0.58, 0.62, 0.66, 0.59, 0.72, 0.63],
    "centralized": [0.75, 0.68, 0.65, 0.65, 0.62, 0.62, 0.73, 0.65, 0.73, 0.67],
    "fedprox": [0.67, 0.60, 0.61, 0.64, 0.63, 0.64, 0.65, 0.59, 0.58, 0.62],
    "fedprox_lg": [0.69, 0.62, 0.62, 0.63, 0.61, 0.65, 0.71, 0.60, 0.84, 0.66],
    "ifca": [0.50, 0.58, 0.52, 0.53, 0.51, 0.48, 0.51, 0.51, 0.35, 0.50],
    "fedprox_finetune": [0.74, 0.65, 0.76, 0.72, 0.53, 0.67, 0.81, 0.69, 0.50, 0.67],
    "assigned_clustering": [0.47, 0.55, 0.51, 0.48, 0.49, 0.51, 0.70, 0.60, 0.36, 0.52],
    "fedprox_alpha": [0.64, 0.45, 0.56, 0.58, 0.55, 0.52, 0.64, 0.55, 0.59, 0.56],
}

#: All three result tables keyed by the model they evaluate.
PAPER_TABLES: Dict[str, Dict[str, List[float]]] = {
    "flnet": PAPER_TABLE3_FLNET,
    "routenet": PAPER_TABLE4_ROUTENET,
    "pros": PAPER_TABLE5_PROS,
}

#: Table 1 of the paper: FLNet architecture configuration.
PAPER_TABLE1_FLNET_ARCHITECTURE: List[Dict[str, object]] = [
    {"layer": "input_conv", "kernel_size": "9 x 9", "filters": 64, "activation": "ReLU"},
    {"layer": "output_conv", "kernel_size": "9 x 9", "filters": 1, "activation": "None"},
]

#: Table 2 of the paper: per-client design and placement counts.
PAPER_TABLE2_SETUP: List[Dict[str, object]] = [
    {"client": 1, "suite": "ITC'99", "train_designs": 4, "train_placements": 462, "test_designs": 2, "test_placements": 230},
    {"client": 2, "suite": "ITC'99", "train_designs": 2, "train_placements": 231, "test_designs": 1, "test_placements": 114},
    {"client": 3, "suite": "ITC'99", "train_designs": 2, "train_placements": 231, "test_designs": 2, "test_placements": 232},
    {"client": 4, "suite": "ISCAS'89", "train_designs": 7, "train_placements": 812, "test_designs": 3, "test_placements": 348},
    {"client": 5, "suite": "ISCAS'89", "train_designs": 7, "train_placements": 812, "test_designs": 3, "test_placements": 348},
    {"client": 6, "suite": "ISCAS'89", "train_designs": 6, "train_placements": 697, "test_designs": 3, "test_placements": 348},
    {"client": 7, "suite": "IWLS'05", "train_designs": 6, "train_placements": 656, "test_designs": 3, "test_placements": 280},
    {"client": 8, "suite": "IWLS'05", "train_designs": 7, "train_placements": 742, "test_designs": 3, "test_placements": 329},
    {"client": 9, "suite": "ISPD'15", "train_designs": 9, "train_placements": 175, "test_designs": 4, "test_placements": 84},
]


def paper_average(model: str, algorithm: str) -> float:
    """The paper's reported average AUC for one (model, algorithm) pair."""
    table = PAPER_TABLES[model.lower()]
    return table[algorithm][-1]


def format_rows(rows: Sequence[EvaluationRow], title: Optional[str] = None, digits: int = 3) -> str:
    """Render evaluation rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    client_ids = sorted(rows[0].per_client_auc)
    headers = ["Method"] + [f"Client {cid}" for cid in client_ids] + ["Average"]
    lines: List[List[str]] = [headers]
    for row in rows:
        display = ROW_DISPLAY_NAMES.get(row.algorithm, row.algorithm)
        values = [f"{row.per_client_auc[cid]:.{digits}f}" for cid in client_ids]
        lines.append([display] + values + [f"{row.average_auc:.{digits}f}"])
    widths = [max(len(line[col]) for line in lines) for col in range(len(headers))]
    rendered = []
    if title:
        rendered.append(title)
    for index, line in enumerate(lines):
        rendered.append("  ".join(cell.ljust(widths[col]) for col, cell in enumerate(line)))
        if index == 0:
            rendered.append("  ".join("-" * widths[col] for col in range(len(headers))))
    return "\n".join(rendered)


def comparison_table(
    model: str,
    measured: Mapping[str, float],
    digits: int = 3,
) -> str:
    """Side-by-side "paper vs. measured" average-AUC table for one model."""
    table = PAPER_TABLES[model.lower()]
    lines = [f"{'Method':<32} {'paper avg':>10} {'measured avg':>13}"]
    lines.append("-" * 58)
    for algorithm, values in table.items():
        if algorithm not in measured:
            continue
        display = ROW_DISPLAY_NAMES.get(algorithm, algorithm)
        lines.append(
            f"{display:<32} {values[-1]:>10.2f} {measured[algorithm]:>13.{digits}f}"
        )
    return "\n".join(lines)
