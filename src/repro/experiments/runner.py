"""Experiment runner: from a configuration to the rows of a results table."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.data.clients import ClientData, CorpusBuilder
from repro.fl import (
    EvaluationRow,
    FederatedClient,
    SeededModelFactory,
    TrainingResult,
    create_algorithm,
    evaluate_result,
)
from repro.experiments.config import ExperimentConfig
from repro.models.registry import create_model

PathLike = Union[str, Path]


@dataclass
class AlgorithmOutcome:
    """Everything recorded about one algorithm run inside an experiment."""

    algorithm: str
    evaluation: EvaluationRow
    training: TrainingResult
    runtime_seconds: float


@dataclass
class ExperimentResult:
    """The outcome of one experiment (one table of the paper)."""

    config: ExperimentConfig
    outcomes: List[AlgorithmOutcome] = field(default_factory=list)

    @property
    def rows(self) -> List[EvaluationRow]:
        return [outcome.evaluation for outcome in self.outcomes]

    def row(self, algorithm: str) -> EvaluationRow:
        for outcome in self.outcomes:
            if outcome.algorithm == algorithm:
                return outcome.evaluation
        raise KeyError(f"no outcome recorded for algorithm {algorithm!r}")

    def average_auc(self, algorithm: str) -> float:
        return self.row(algorithm).average_auc

    def as_table(self) -> List[Dict[str, object]]:
        """Printable list of row dictionaries (method, per-client AUC, average)."""
        table = []
        for outcome in self.outcomes:
            entry: Dict[str, object] = {"method": outcome.algorithm}
            entry.update({k: round(v, 4) for k, v in outcome.evaluation.as_dict().items()})
            entry["runtime_s"] = round(outcome.runtime_seconds, 2)
            table.append(entry)
        return table


class ExperimentRunner:
    """Builds the corpus, wires up clients, and runs every requested algorithm."""

    def __init__(self, config: ExperimentConfig, cache_dir: Optional[PathLike] = None):
        self.config = config
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._client_data: Optional[List[ClientData]] = None

    # -- corpus / clients ------------------------------------------------------
    def client_data(self) -> List[ClientData]:
        """Synthesize (or load) the per-client datasets."""
        if self._client_data is None:
            builder = CorpusBuilder(self.config.corpus)
            self._client_data = builder.build_all(self.config.client_specs, self.cache_dir)
        return self._client_data

    def num_feature_channels(self) -> int:
        return len(self.config.corpus.features)

    def model_factory(self) -> SeededModelFactory:
        """A fresh, deterministic model factory for one algorithm run."""
        channels = self.num_feature_channels()
        kwargs = dict(self.config.model_kwargs)

        def build(seed: int):
            return create_model(self.config.model, channels, seed=seed, **kwargs)

        return SeededModelFactory(build, base_seed=self.config.seed)

    def federated_clients(self) -> List[FederatedClient]:
        """Wrap every client's data into a federated client."""
        factory = self.model_factory()
        return [
            FederatedClient.from_client_data(data, factory, self.config.fl)
            for data in self.client_data()
        ]

    # -- execution ----------------------------------------------------------------
    def run_algorithm(
        self, name: str, clients: Optional[Sequence[FederatedClient]] = None
    ) -> AlgorithmOutcome:
        """Train with one algorithm and evaluate it on every client."""
        clients = list(clients) if clients is not None else self.federated_clients()
        algorithm = create_algorithm(name, clients, self.model_factory(), self.config.fl)
        start = time.perf_counter()
        training = algorithm.run()
        runtime = time.perf_counter() - start
        evaluation = evaluate_result(training, clients)
        return AlgorithmOutcome(
            algorithm=name,
            evaluation=evaluation,
            training=training,
            runtime_seconds=runtime,
        )

    def run(self, algorithms: Optional[Sequence[str]] = None) -> ExperimentResult:
        """Run every algorithm of the configuration and collect the table."""
        names = tuple(algorithms) if algorithms is not None else self.config.algorithms
        result = ExperimentResult(config=self.config)
        clients = self.federated_clients()
        for name in names:
            result.outcomes.append(self.run_algorithm(name, clients))
        return result


def run_experiment(
    config: ExperimentConfig,
    algorithms: Optional[Sequence[str]] = None,
    cache_dir: Optional[PathLike] = None,
) -> ExperimentResult:
    """One-call convenience wrapper around :class:`ExperimentRunner`."""
    return ExperimentRunner(config, cache_dir=cache_dir).run(algorithms)
