"""Experiment runner: from a configuration to the rows of a results table."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.data.clients import ClientData, CorpusBuilder
from repro.fl import (
    Channel,
    ChannelSummary,
    CheckpointManager,
    ClientDirectory,
    EvaluationRow,
    ExecutionBackend,
    FederatedClient,
    FederatedServer,
    ResilienceManager,
    ResilienceSummary,
    RoundScheduler,
    SchedulingSummary,
    SeededModelFactory,
    TrainingResult,
    create_aggregator,
    create_algorithm,
    create_backend,
    create_channel,
    create_resilience,
    create_scheduler,
    evaluate_result,
)
from repro.experiments.config import ExperimentConfig
from repro.models.registry import create_model

PathLike = Union[str, Path]


@dataclass(frozen=True)
class ModelBuilder:
    """Builds one registry model from a seed.

    A module-level class (rather than a closure) so model factories — and the
    federated clients holding them — stay picklable, which the process-pool
    execution backend requires under the ``spawn`` start method.
    """

    model: str
    channels: int
    kwargs: Tuple[Tuple[str, object], ...] = ()

    def __call__(self, seed: int):
        return create_model(self.model, self.channels, seed=seed, **dict(self.kwargs))


@dataclass
class AlgorithmOutcome:
    """Everything recorded about one algorithm run inside an experiment."""

    algorithm: str
    evaluation: EvaluationRow
    training: TrainingResult
    runtime_seconds: float
    #: Measured transport bytes (None when no compression channel was used).
    communication: Optional[ChannelSummary] = None
    #: Participation / simulated-time / staleness totals (None when the run
    #: used no round scheduler, or the algorithm ignores scheduling).
    scheduling: Optional[SchedulingSummary] = None
    #: Population-scale accounting (None without a virtualized population):
    #: aggregation mode, eager clients before sampling, peak concurrently
    #: materialized clients, total materializations/releases, folded updates.
    population: Optional[Dict[str, object]] = None
    #: Fault-tolerance accounting (None when the run used no resilience
    #: manager, or the algorithm ignores it): retries, give-ups, pool
    #: respawns, dropped clients, injected fault counts.
    resilience: Optional[ResilienceSummary] = None


@dataclass
class ExperimentResult:
    """The outcome of one experiment (one table of the paper)."""

    config: ExperimentConfig
    outcomes: List[AlgorithmOutcome] = field(default_factory=list)

    @property
    def rows(self) -> List[EvaluationRow]:
        return [outcome.evaluation for outcome in self.outcomes]

    def row(self, algorithm: str) -> EvaluationRow:
        for outcome in self.outcomes:
            if outcome.algorithm == algorithm:
                return outcome.evaluation
        raise KeyError(f"no outcome recorded for algorithm {algorithm!r}")

    def average_auc(self, algorithm: str) -> float:
        return self.row(algorithm).average_auc

    def as_table(self) -> List[Dict[str, object]]:
        """Printable list of row dictionaries (method, per-client AUC, average)."""
        table = []
        for outcome in self.outcomes:
            entry: Dict[str, object] = {"method": outcome.algorithm}
            entry.update({k: round(v, 4) for k, v in outcome.evaluation.as_dict().items()})
            entry["runtime_s"] = round(outcome.runtime_seconds, 2)
            if outcome.communication is not None:
                entry["uplink_bytes"] = outcome.communication.total_uplink_bytes
                entry["downlink_bytes"] = outcome.communication.total_downlink_bytes
            if outcome.scheduling is not None:
                entry["dropped"] = outcome.scheduling.total_dropped
                entry["simulated_s"] = round(outcome.scheduling.simulated_seconds, 1)
            table.append(entry)
        return table


class ExperimentRunner:
    """Builds the corpus, wires up clients, and runs every requested algorithm."""

    def __init__(self, config: ExperimentConfig, cache_dir: Optional[PathLike] = None):
        self.config = config
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._client_data: Optional[List[ClientData]] = None
        self._directory: Optional[ClientDirectory] = None

    # -- corpus / clients ------------------------------------------------------
    def client_data(self) -> List[ClientData]:
        """Synthesize (or load) the per-client datasets."""
        if self._client_data is None:
            builder = CorpusBuilder(self.config.corpus)
            self._client_data = builder.build_all(self.config.client_specs, self.cache_dir)
        return self._client_data

    def num_feature_channels(self) -> int:
        return len(self.config.corpus.features)

    def model_factory(self) -> SeededModelFactory:
        """A fresh, deterministic model factory for one algorithm run."""
        builder = ModelBuilder(
            model=self.config.model,
            channels=self.num_feature_channels(),
            kwargs=tuple(sorted(self.config.model_kwargs.items())),
        )
        return SeededModelFactory(builder, base_seed=self.config.seed)

    def client_directory(self) -> Optional[ClientDirectory]:
        """The lazy population roster (``None`` without ``config.population``).

        Cached: every algorithm of an experiment trains over the same
        directory, so the materialization counters accumulate run-wide.
        """
        if self.config.population is None:
            return None
        if self._directory is None:
            self._directory = ClientDirectory(
                self.client_data(),
                self.model_factory(),
                self.config.fl,
                population=self.config.population,
            )
        return self._directory

    def federated_clients(self) -> List:
        """The client roster: eager clients, or lazy handles under a population."""
        directory = self.client_directory()
        if directory is not None:
            return list(directory.handles)
        factory = self.model_factory()
        return [
            FederatedClient.from_client_data(data, factory, self.config.fl)
            for data in self.client_data()
        ]

    def federated_server(self) -> FederatedServer:
        """A fresh server carrying the configured aggregation mode."""
        return FederatedServer(aggregator=create_aggregator(self.config.aggregation))

    # -- execution ----------------------------------------------------------------
    def wire_fingerprint(self) -> Dict[str, object]:
        """The run-identity fingerprint a wire joiner must match at handshake.

        Every field that shapes the client-side computation is included, so
        a joiner built from a different preset / seed / corpus / dtype is
        rejected before it can silently poison a run.  Both `repro serve`
        and `repro join` derive it from the same configuration code path.
        """
        return {
            "model": self.config.model,
            "model_kwargs": tuple(sorted(self.config.model_kwargs.items())),
            "seed": self.config.seed,
            "corpus": self.config.corpus.cache_key(),
            "clients": tuple(spec.client_id for spec in self.config.client_specs),
            "compute_dtype": self.config.fl.compute_dtype,
            "learning_rate": self.config.fl.learning_rate,
            "batch_size": self.config.fl.batch_size,
            "local_steps": self.config.fl.local_steps,
        }

    def execution_backend(self) -> ExecutionBackend:
        """The execution backend requested by the configuration.

        The caller owns the returned backend and should ``close()`` it (or
        use it as a context manager) once training is done; the serial
        backend holds no resources, the process-pool backend holds workers,
        and the wire backend holds the federation server (listening socket,
        journal, client sessions).
        """
        if self.config.backend == "wire":
            from repro.fl.net import WireBackend, WireFaultPlan

            fault_plan = None
            if (
                self.config.wire_fault_disconnect_rate > 0
                or self.config.wire_fault_delay_rate > 0
                or self.config.wire_fault_corrupt_rate > 0
            ):
                fault_plan = WireFaultPlan(
                    disconnect_rate=self.config.wire_fault_disconnect_rate,
                    delay_rate=self.config.wire_fault_delay_rate,
                    corrupt_rate=self.config.wire_fault_corrupt_rate,
                    delay_seconds=self.config.wire_delay_seconds,
                    seed=self.config.seed,
                )
            return WireBackend(
                host=self.config.wire_host,
                port=self.config.wire_port,
                heartbeat_interval=self.config.heartbeat_interval,
                client_timeout=self.config.client_timeout,
                journal_dir=self.config.wire_journal_dir,
                fault_plan=fault_plan,
                fingerprint=self.wire_fingerprint(),
                blas_threads=self.config.blas_threads,
            )
        return create_backend(
            self.config.backend,
            workers=self.config.workers,
            blas_threads=self.config.blas_threads,
        )

    def transport_channel(self) -> Optional[Channel]:
        """A fresh transport channel for one algorithm run (or ``None``).

        Channels are stateful (per-client delta references, error-feedback
        residuals, and the measured-byte tracker), so every algorithm run
        gets its own.
        """
        return create_channel(
            self.config.compression,
            compression_bits=self.config.compression_bits,
            topk_fraction=self.config.topk_fraction,
        )

    def round_scheduler(self) -> Optional[RoundScheduler]:
        """A fresh round scheduler for one algorithm run (or ``None``).

        Schedulers are stateful (sampler / availability / latency RNGs, the
        virtual clock, and participation counters), so every algorithm run
        gets its own — seeded from the run seed, which makes cohorts
        identical across algorithms, execution backends, and checkpoint
        resume.
        """
        return create_scheduler(
            participation=self.config.participation,
            clients_per_round=self.config.clients_per_round,
            sampler=self.config.sampler,
            availability=self.config.availability,
            availability_rate=self.config.availability_rate,
            straggler=self.config.straggler_model,
            round_policy=self.config.round_policy,
            deadline=self.config.deadline,
            over_selection=self.config.over_selection,
            buffer_size=self.config.buffer_size,
            seed=self.config.seed,
        )

    def resilience_manager(self) -> Optional[ResilienceManager]:
        """A fresh resilience manager for one algorithm run (or ``None``).

        Managers are stateful (the fault plan's per-client draw counters,
        retry/backoff accounting, and the permanent-failure set), so every
        algorithm run gets its own — seeded from the run seed, which makes
        injected faults identical across algorithms, execution backends,
        and checkpoint resume.
        """
        manager = create_resilience(
            quorum=self.config.quorum,
            max_retries=self.config.max_retries,
            task_timeout=self.config.task_timeout,
            crash_rate=self.config.fault_crash_rate,
            exception_rate=self.config.fault_exception_rate,
            timeout_rate=self.config.fault_timeout_rate,
            corruption_rate=self.config.fault_corruption_rate,
            seed=self.config.seed,
        )
        if manager is None and self.config.backend == "wire":
            # A wire run always gets a supervisor: network faults (socket
            # death, heartbeat loss, decode failure) are TaskFailures that
            # should retry from pre-captured RNG snapshots, not abort the
            # run.  A supervised fault-free pass is bit-identical to the
            # unsupervised path, so this costs nothing in parity.
            manager = ResilienceManager()
        return manager

    def _checkpoint_manager(self, algorithm: str) -> Optional[CheckpointManager]:
        """Per-algorithm checkpoint manager under the configured directory."""
        if self.config.checkpoint_dir is None:
            return None
        return CheckpointManager(Path(self.config.checkpoint_dir) / algorithm)

    def run_algorithm(
        self,
        name: str,
        clients: Optional[Sequence[FederatedClient]] = None,
        backend: Optional[ExecutionBackend] = None,
    ) -> AlgorithmOutcome:
        """Train with one algorithm and evaluate it on every client.

        When ``backend`` is ``None``, one is created from the configuration
        for this run and closed afterwards; a provided backend is left open
        so callers can reuse its worker pool across algorithms.
        """
        clients = list(clients) if clients is not None else self.federated_clients()
        owns_backend = backend is None
        backend = backend if backend is not None else self.execution_backend()
        channel = self.transport_channel()
        scheduler = self.round_scheduler()
        server = self.federated_server()
        directory = self.client_directory()
        # The witness the population smoke test asserts: nothing has been
        # built before the sampler selected anything.
        eager_before = directory.eager_clients if directory is not None else None
        try:
            algorithm = create_algorithm(
                name,
                clients,
                self.model_factory(),
                self.config.fl,
                server=server,
                backend=backend,
                checkpoint=self._checkpoint_manager(name),
                channel=channel,
                scheduler=scheduler,
                resilience=self.resilience_manager(),
            )
            start = time.perf_counter()
            training = algorithm.run()
            runtime = time.perf_counter() - start
        finally:
            if owns_backend:
                backend.close()
        if directory is not None:
            # Evaluating all 1e4+ population members would materialize every
            # one; the first base-partition's worth of handles covers each
            # distinct dataset exactly once (population client k reuses
            # partition k % B), so they are the evaluation representatives.
            representatives = clients[: directory.base_size()]
            evaluation = evaluate_result(training, representatives)
            for handle in representatives:
                handle.release()
        else:
            evaluation = evaluate_result(training, clients)
        # create_algorithm drops the scheduler for algorithms that ignore
        # scheduling; report only what actually drove the run.
        effective_scheduler = getattr(algorithm, "scheduler", None)
        effective_resilience = getattr(algorithm, "resilience", None)
        population_summary = None
        if directory is not None:
            population_summary = {
                "population": directory.population,
                "aggregation": server.aggregator.name,
                "eager_clients_before_sampling": eager_before,
                "peak_materialized": directory.peak_materialized,
                "total_materializations": directory.total_materializations,
                "total_releases": directory.total_releases,
                "folded_updates": server.folded_updates,
            }
        return AlgorithmOutcome(
            algorithm=name,
            evaluation=evaluation,
            training=training,
            runtime_seconds=runtime,
            communication=channel.summary() if channel is not None else None,
            scheduling=effective_scheduler.summary() if effective_scheduler is not None else None,
            population=population_summary,
            resilience=(
                effective_resilience.summary(backend)
                if effective_resilience is not None
                else None
            ),
        )

    def run(self, algorithms: Optional[Sequence[str]] = None) -> ExperimentResult:
        """Run every algorithm of the configuration and collect the table.

        One execution backend (and, for the process backend, one worker pool)
        is shared by every algorithm of the experiment.
        """
        names = tuple(algorithms) if algorithms is not None else self.config.algorithms
        result = ExperimentResult(config=self.config)
        clients = self.federated_clients()
        with self.execution_backend() as backend:
            for name in names:
                result.outcomes.append(self.run_algorithm(name, clients, backend=backend))
        return result


def run_experiment(
    config: ExperimentConfig,
    algorithms: Optional[Sequence[str]] = None,
    cache_dir: Optional[PathLike] = None,
) -> ExperimentResult:
    """One-call convenience wrapper around :class:`ExperimentRunner`."""
    return ExperimentRunner(config, cache_dir=cache_dir).run(algorithms)
