"""Reporting: turn experiment results and bench outputs into markdown.

The benchmark harness writes every regenerated table to
``benchmarks/results/``; this module assembles those text artifacts — and,
when available, live :class:`~repro.experiments.runner.ExperimentResult`
objects — into a single markdown report of the kind EXPERIMENTS.md is built
from, so the paper-vs-measured summary can be refreshed with one call after a
benchmark run instead of by hand.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import PAPER_TABLES, ROW_DISPLAY_NAMES, paper_average

PathLike = Union[str, Path]

#: Result-file stem -> the paper artifact (or ablation) it documents.
RESULT_DESCRIPTIONS: Dict[str, str] = {
    "table1_flnet_architecture": "Table 1 — FLNet architecture configuration",
    "table2_client_setup": "Table 2 — experiment data setup for each client",
    "table3_flnet": "Table 3 — ROC AUC with FLNet",
    "table4_routenet": "Table 4 — ROC AUC with RouteNet",
    "table5_pros": "Table 5 — ROC AUC with PROS",
    "ablation_fedprox_mu": "Ablation (Sec. 4.1) — FedAvg vs FedProx proximal strength",
    "ablation_model_robustness": "Ablation (Sec. 4.2) — robustness to parameter aggregation",
    "ablation_kernel_size": "Ablation (Sec. 4.2 / Table 1) — FLNet kernel size",
    "ablation_alpha_sync": "Ablation (Sec. 4.3) — alpha-portion sync strength",
    "ablation_ifca_clusters": "Ablation (Sec. 4.3) — IFCA cluster count",
    "ablation_heterogeneity": "Ablation (Sec. 4.1) — IID vs non-IID clients",
    "ablation_privacy": "Extension — differential-privacy noise vs accuracy",
    "communication_costs": "Extension — communication cost per algorithm",
    "execution_backends": "Engineering — serial vs. process-pool execution",
    "transport_compression": "Engineering — measured wire traffic per codec",
    "scheduling_policies": "Engineering — round policies under heavy-tail stragglers",
    "global_router": "Substrate validation — global router",
}


def load_result_texts(results_dir: PathLike) -> Dict[str, str]:
    """Read every ``*.txt`` artifact under ``results_dir`` keyed by stem."""
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise FileNotFoundError(f"results directory {results_dir} does not exist")
    texts: Dict[str, str] = {}
    for path in sorted(results_dir.glob("*.txt")):
        texts[path.stem] = path.read_text(encoding="utf-8").rstrip("\n")
    return texts


def _format_bytes(num_bytes: int) -> str:
    """Human-friendly byte count (binary-free, decimal units)."""
    value = float(num_bytes)
    for unit in ("B", "kB", "MB", "GB"):
        if value < 1000.0 or unit == "GB":
            return f"{value:,.1f} {unit}" if unit != "B" else f"{int(value):,d} B"
        value /= 1000.0
    return f"{int(num_bytes):,d} B"  # pragma: no cover - unreachable


def communication_markdown(result: ExperimentResult) -> str:
    """A markdown table of *measured* per-round transport traffic.

    One row per algorithm that ran through a transport channel: the uplink
    and downlink codecs, mean measured uplink/downlink bytes per round, and
    run totals.  Returns an explanatory placeholder when the experiment ran
    without compression (no channel, nothing measured).
    """
    measured = [o for o in result.outcomes if o.communication is not None]
    if not measured:
        return "_No transport channel was active — run with a compression setting to measure bytes._"
    lines = [
        "| Method | Uplink codec | Downlink codec | Rounds | Uplink/round | Downlink/round | Total uplink | Total downlink |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for outcome in measured:
        comm = outcome.communication
        # Per-round means count only rounds with traffic in that direction
        # (e.g. the fine-tuning pass broadcasts but never uploads).
        up_rounds = max(len(comm.uplink_bytes_per_round), 1)
        down_rounds = max(len(comm.downlink_bytes_per_round), 1)
        lines.append(
            f"| {outcome.algorithm} | {comm.uplink_codec} | {comm.downlink_codec} "
            f"| {comm.rounds} "
            f"| {_format_bytes(comm.total_uplink_bytes // up_rounds)} "
            f"| {_format_bytes(comm.total_downlink_bytes // down_rounds)} "
            f"| {_format_bytes(comm.total_uplink_bytes)} "
            f"| {_format_bytes(comm.total_downlink_bytes)} |"
        )
    return "\n".join(lines)


def communication_text(result: ExperimentResult) -> str:
    """Plain-text rendering of the measured transport traffic (CLI output).

    Per algorithm: codec description, per-round means, and totals.  Lines
    are formatted so that a nonzero run is easy to assert on
    (``total uplink <N> B``).
    """
    measured = [o for o in result.outcomes if o.communication is not None]
    if not measured:
        return "No transport channel was active; nothing was measured."
    lines: List[str] = []
    for outcome in measured:
        comm = outcome.communication
        # Per-round means count only rounds with traffic in that direction
        # (e.g. the fine-tuning pass broadcasts but never uploads).
        up_rounds = max(len(comm.uplink_bytes_per_round), 1)
        down_rounds = max(len(comm.downlink_bytes_per_round), 1)
        flags = []
        if comm.delta_upload:
            flags.append("delta uploads")
        if comm.error_feedback:
            flags.append("error feedback")
        suffix = f" ({', '.join(flags)})" if flags else ""
        lines.append(
            f"{outcome.algorithm:<22} up {comm.uplink_codec} / down {comm.downlink_codec}{suffix}"
        )
        lines.append(
            f"{'':<22} total uplink {comm.total_uplink_bytes:,d} B "
            f"({comm.total_uplink_bytes // up_rounds:,d} B/round), "
            f"total downlink {comm.total_downlink_bytes:,d} B "
            f"({comm.total_downlink_bytes // down_rounds:,d} B/round) "
            f"over {comm.rounds} round(s)"
        )
    return "\n".join(lines)


def _format_seconds(seconds: float) -> str:
    """Human-friendly simulated duration."""
    if seconds >= 3600.0:
        return f"{seconds / 3600.0:,.2f} h"
    if seconds >= 60.0:
        return f"{seconds / 60.0:,.1f} min"
    return f"{seconds:,.1f} s"


def scheduling_markdown(result: ExperimentResult) -> str:
    """A markdown table of the client-scheduling outcome per algorithm.

    One row per algorithm that ran under a round scheduler: the policy and
    models, how many client tasks were selected / arrived / dropped, the
    simulated wall-clock time, and (for fedbuff) buffered-aggregation and
    staleness statistics.  Returns an explanatory placeholder when the
    experiment ran without scheduling options.
    """
    scheduled = [o for o in result.outcomes if o.scheduling is not None]
    if not scheduled:
        return "_No round scheduler was active — run with scheduling options to simulate client populations._"
    lines = [
        "| Method | Policy | Sampler | Straggler | Rounds | Selected | Arrived | Dropped | Simulated time | Aggregations | Mean staleness |",
        "|---|---|---|---|---|---|---|---|---|---|---|",
    ]
    for outcome in scheduled:
        sched = outcome.scheduling
        aggregations = str(sched.buffered_aggregations) if sched.policy == "fedbuff" else "—"
        staleness = f"{sched.mean_staleness:.2f}" if sched.policy == "fedbuff" else "—"
        lines.append(
            f"| {outcome.algorithm} | {sched.policy} | {sched.sampler} | {sched.straggler} "
            f"| {sched.rounds} | {sched.total_selected} | {sched.total_arrived} "
            f"| {sched.total_dropped} | {_format_seconds(sched.simulated_seconds)} "
            f"| {aggregations} | {staleness} |"
        )
    return "\n".join(lines)


def scheduling_text(result: ExperimentResult) -> str:
    """Plain-text rendering of the client-scheduling outcome (CLI output).

    Lines are formatted so a run's effects are easy to assert on
    (``dropped stragglers <N>``, ``buffered aggregations <N>``).
    """
    scheduled = [o for o in result.outcomes if o.scheduling is not None]
    if not scheduled:
        return "No round scheduler was active; every client ran every round."
    lines: List[str] = []
    for outcome in scheduled:
        sched = outcome.scheduling
        lines.append(
            f"{outcome.algorithm:<22} policy {sched.policy}, sampler {sched.sampler}, "
            f"availability {sched.availability}, straggler {sched.straggler}"
        )
        lines.append(
            f"{'':<22} selected {sched.total_selected}, arrived {sched.total_arrived}, "
            f"dropped stragglers {sched.total_dropped}, simulated time "
            f"{sched.simulated_seconds:,.1f} s over {sched.rounds} round(s)"
        )
        if sched.policy == "fedbuff":
            lines.append(
                f"{'':<22} buffered aggregations {sched.buffered_aggregations}, "
                f"buffered updates {sched.updates_buffered}, "
                f"mean staleness {sched.mean_staleness:.2f}, "
                f"max staleness {sched.max_staleness}"
            )
    return "\n".join(lines)


def resilience_markdown(result: ExperimentResult) -> str:
    """A markdown table of the fault-tolerance outcome per algorithm.

    One row per algorithm that ran under a resilience manager: the quorum
    and retry policy, how many attempts were retried / given up, pool
    respawns, injected fault totals, and the clients permanently dropped.
    Returns an explanatory placeholder when the experiment ran without
    fault-tolerance options.
    """
    resilient = [o for o in result.outcomes if o.resilience is not None]
    if not resilient:
        return "_No resilience manager was active — run with quorum/fault options to exercise fault tolerance._"
    lines = [
        "| Method | Quorum | Retry policy | Retries | Gave up | Respawns | Injected | Dropped clients | Backoff |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for outcome in resilient:
        res = outcome.resilience
        injected = sum(res.injected.values())
        dropped = ", ".join(str(client) for client in res.dropped_clients) or "—"
        lines.append(
            f"| {outcome.algorithm} | {res.quorum:.2f} | {res.retry_policy} "
            f"| {res.retries} | {res.gave_up} | {res.respawns} | {injected} "
            f"| {dropped} | {_format_seconds(res.backoff_seconds)} |"
        )
    networked = [o for o in resilient if o.resilience.network]
    if networked:
        lines.append("")
        lines.append(
            "| Method | Dispatched | Completed | Disconnects | Heartbeat losses "
            "| Reconnects | Replayed | Injected wire faults |"
        )
        lines.append("|---|---|---|---|---|---|---|---|")
        for outcome in networked:
            net = outcome.resilience.network
            injected_wire = (
                net.get("injected_disconnects", 0)
                + net.get("injected_delays", 0)
                + net.get("injected_corruptions", 0)
            )
            lines.append(
                f"| {outcome.algorithm} | {net.get('dispatched', 0)} "
                f"| {net.get('completed', 0)} | {net.get('disconnects', 0)} "
                f"| {net.get('heartbeat_losses', 0)} | {net.get('reconnects', 0)} "
                f"| {net.get('replays', 0)} | {injected_wire} |"
            )
    return "\n".join(lines)


def resilience_text(result: ExperimentResult) -> str:
    """Plain-text rendering of the fault-tolerance outcome (CLI output).

    Lines are formatted so a chaos run's effects are easy to assert on
    (``retries <N>``, ``dropped clients <N>``).
    """
    resilient = [o for o in result.outcomes if o.resilience is not None]
    if not resilient:
        return "No resilience manager was active; a client failure aborts the run."
    lines: List[str] = []
    for outcome in resilient:
        res = outcome.resilience
        lines.append(
            f"{outcome.algorithm:<22} quorum {res.quorum:.2f}, retry policy {res.retry_policy}"
        )
        lines.append(
            f"{'':<22} retries {res.retries}, gave up {res.gave_up}, "
            f"pool respawns {res.respawns}, dropped clients {len(res.dropped_clients)}, "
            f"backoff {res.backoff_seconds:,.1f} s"
        )
        if any(res.injected.values()):
            injected = ", ".join(
                f"{kind} {count}" for kind, count in res.injected.items() if count
            )
            lines.append(f"{'':<22} injected faults: {injected}")
        if res.network:
            net = res.network
            # One greppable line per wire run: `wire: reconnects=N ...`.
            lines.append(
                f"{'':<22} wire: dispatched={net.get('dispatched', 0)} "
                f"completed={net.get('completed', 0)} "
                f"disconnects={net.get('disconnects', 0)} "
                f"heartbeat_losses={net.get('heartbeat_losses', 0)} "
                f"reconnects={net.get('reconnects', 0)} "
                f"replays={net.get('replays', 0)} "
                f"decode_failures={net.get('decode_failures', 0)} "
                f"stale_updates={net.get('stale_updates', 0)}"
            )
            injected_wire = {
                kind: net.get(f"injected_{kind}s", 0)
                for kind in ("disconnect", "delay", "corruption")
                if net.get(f"injected_{kind}s", 0)
            }
            if injected_wire:
                rendered = ", ".join(f"{kind} {count}" for kind, count in injected_wire.items())
                lines.append(f"{'':<22} injected wire faults: {rendered}")
        for record in res.renormalizations:
            lines.append(
                f"{'':<22} round {record['round']}: dropped {record['dropped_ids']}, "
                f"remaining weight {record['remaining_weight_fraction']:.3f}"
            )
    return "\n".join(lines)


def comparison_markdown(model: str, result: ExperimentResult, digits: int = 3) -> str:
    """A markdown paper-vs-measured table for one table experiment.

    ``model`` selects the paper table (``flnet`` -> Table 3, ``routenet`` ->
    Table 4, ``pros`` -> Table 5); rows of ``result`` whose algorithm does not
    appear in the paper's table (e.g. extension algorithms) are listed with an
    em-dash in the paper column.
    """
    if model.lower() not in PAPER_TABLES:
        raise ValueError(f"no paper table for model {model!r}; expected one of {sorted(PAPER_TABLES)}")
    lines = ["| Method | Paper avg | Measured avg |", "|---|---|---|"]
    paper_table = PAPER_TABLES[model.lower()]
    for row in result.rows:
        display = ROW_DISPLAY_NAMES.get(row.algorithm, row.algorithm)
        if row.algorithm in paper_table:
            paper_value = f"{paper_average(model, row.algorithm):.2f}"
        else:
            paper_value = "—"
        lines.append(f"| {display} | {paper_value} | {row.average_auc:.{digits}f} |")
    return "\n".join(lines)


def results_report(
    results_dir: PathLike,
    title: str = "Regenerated evaluation artifacts",
    descriptions: Optional[Mapping[str, str]] = None,
) -> str:
    """A markdown report embedding every bench artifact under ``results_dir``.

    Each artifact becomes a section headed by its paper-artifact description
    (falling back to the file stem for unknown files) with the bench's text
    output in a fenced code block.
    """
    descriptions = dict(RESULT_DESCRIPTIONS if descriptions is None else descriptions)
    texts = load_result_texts(results_dir)
    lines: List[str] = [f"# {title}", ""]
    if not texts:
        lines.append("_No benchmark results found — run `pytest benchmarks/ --benchmark-only` first._")
        return "\n".join(lines)

    known = [stem for stem in descriptions if stem in texts]
    unknown = [stem for stem in sorted(texts) if stem not in descriptions]
    for stem in known + unknown:
        heading = descriptions.get(stem, stem)
        lines.append(f"## {heading}")
        lines.append("")
        lines.append("```text")
        lines.append(texts[stem])
        lines.append("```")
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"


def write_results_report(
    results_dir: PathLike,
    output_path: PathLike,
    title: str = "Regenerated evaluation artifacts",
) -> Path:
    """Render :func:`results_report` and write it to ``output_path``."""
    output_path = Path(output_path)
    output_path.write_text(results_report(results_dir, title=title), encoding="utf-8")
    return output_path
