"""Table 2: experiment data setup for each client.

Regenerates the 9-client corpus (designs per suite, design-disjoint
train/test split, placement sweeps) under the scaled-down ``default`` preset
and prints the per-client design / placement counts next to the paper's
Table 2.  The timing measures the full synthetic data-generation flow
(netlist generation -> placement -> feature maps -> DRC labels).
"""

from conftest import CACHE_DIR, write_result

from repro.data import PAPER_TOTAL_DESIGNS, PAPER_TOTAL_PLACEMENTS, table2_rows
from repro.experiments import PAPER_TABLE2_SETUP, ExperimentRunner, default


def build_corpus():
    runner = ExperimentRunner(default("flnet"), cache_dir=CACHE_DIR)
    return runner.client_data()


def test_table2_client_setup(benchmark):
    clients = benchmark.pedantic(build_corpus, rounds=1, iterations=1)

    assert len(clients) == 9
    rows = table2_rows(clients)
    total_designs = sum(r["train_designs"] + r["test_designs"] for r in rows)
    assert total_designs == PAPER_TOTAL_DESIGNS  # 74 designs, exactly as in the paper
    for client, paper_row in zip(clients, PAPER_TABLE2_SETUP):
        assert client.spec.train_designs == paper_row["train_designs"]
        assert client.spec.test_designs == paper_row["test_designs"]
        assert client.train.suites() == [client.spec.suite]
        # Design-disjoint split and per-client privacy of the corpus.
        assert set(client.train.design_names()).isdisjoint(client.test.design_names())

    lines = [
        "Table 2: Experiment Data Setup for Each Client",
        "(placement counts are scaled by the default preset; paper counts in parentheses)",
        "",
        f"{'Client':<9}{'Suite':<10}{'Train designs':<15}{'Train places':<20}{'Test designs':<14}{'Test places'}",
    ]
    for row, paper_row in zip(rows, PAPER_TABLE2_SETUP):
        lines.append(
            f"{row['client']:<9}{row['suite']:<10}{row['train_designs']:<15}"
            f"{str(row['train_placements']) + ' (' + str(paper_row['train_placements']) + ')':<20}"
            f"{row['test_designs']:<14}"
            f"{str(row['test_placements']) + ' (' + str(paper_row['test_placements']) + ')'}"
        )
    generated = sum(r["train_placements"] + r["test_placements"] for r in rows)
    lines.append("")
    lines.append(f"Total designs: {total_designs} (paper: {PAPER_TOTAL_DESIGNS})")
    lines.append(f"Total placements: {generated} (paper: {PAPER_TOTAL_PLACEMENTS})")
    text = "\n".join(lines)
    print("\n" + text)
    write_result("table2_client_setup", text)
