"""Parameter-engine throughput: flat buffers vs. the dict/stack path.

Measures the two server-side hot paths the flat-buffer engine replaced:

* **aggregation** — ``weighted_average`` over K client states as one
  ``(K,) @ (K, P)`` GEMV over contiguous buffers (with a reused work
  matrix), against the pre-refactor per-name ``np.stack``/``np.tensordot``
  loop (reachable through :func:`repro.fl.parameters.reference_mode`);
* **wire codecs** — encode+decode of one model state through each codec,
  flat states (zero-copy sorted buffer, one-pass scales/codes) against
  plain dict states.

Two model regimes are measured: a production-depth estimator (128 tensors —
the per-name Python overhead the dict path pays K times per tensor
dominates) and the shallower RouteNet (32 larger tensors — both paths are
close to memory bandwidth, so the flat win is smaller).

Results go to ``benchmarks/results/param_ops.txt``.  The CI perf-smoke job
runs this module; the assertions require flat ≥ dict throughput on every
row and a ≥ 5x speedup on 256-client weighted averaging of the deep state.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Tuple

import numpy as np

from conftest import write_records, write_result
from repro.fl.parameters import FlatState, reference_mode, weighted_average
from repro.models import RouteNet
from repro.nn.layers.conv import Conv2d
from repro.nn.module import Sequential

CLIENT_COUNTS = (8, 64, 256)
REQUIRED_AGGREGATION_SPEEDUP = 5.0  # at K=256, deep state


def deep_state() -> Dict[str, np.ndarray]:
    """A production-depth estimator state: 64 conv blocks, 128 tensors."""
    rng = np.random.default_rng(0)
    model = Sequential(*[Conv2d(4, 4, 3, padding=1, rng=rng) for _ in range(64)])
    return model.state_dict()


def routenet_state() -> Dict[str, np.ndarray]:
    """The paper's deep estimator (32 tensors, larger per-tensor blocks)."""
    return RouteNet(in_channels=3, base_filters=8, seed=0).state_dict()


def perturbed_states(base: Dict[str, np.ndarray], count: int) -> List[Dict[str, np.ndarray]]:
    rng = np.random.default_rng(17)
    return [
        {name: values + 1e-3 * rng.normal(size=values.shape) for name, values in base.items()}
        for _ in range(count)
    ]


def best_of(callable_: Callable[[], object], repeats: int = 5) -> float:
    """Best wall-clock seconds over ``repeats`` runs (one warmup call)."""
    callable_()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def bench_aggregation(
    base: Dict[str, np.ndarray], regime: str
) -> Tuple[List[str], Dict[int, float], List[Dict[str, object]]]:
    lines = [f"{'K clients':>10} {'dict/stack ms':>14} {'flat GEMV ms':>13} {'speedup':>8}"]
    speedups: Dict[int, float] = {}
    records: List[Dict[str, object]] = []
    for count in CLIENT_COUNTS:
        dict_states = perturbed_states(base, count)
        flat_states = [FlatState.from_state(state) for state in dict_states]
        weights = list(np.random.default_rng(3).random(count) + 0.5)

        def run_dict():
            with reference_mode():
                return weighted_average(dict_states, weights)

        def run_flat():
            return weighted_average(flat_states, weights)

        dict_seconds = best_of(run_dict)
        flat_seconds = best_of(run_flat)
        # Parity while we are here: the two paths agree to 1e-12.
        reference = run_dict()
        flat = run_flat()
        for name in reference:
            np.testing.assert_allclose(flat[name], reference[name], rtol=0, atol=1e-12)
        speedups[count] = dict_seconds / flat_seconds
        lines.append(
            f"{count:>10} {dict_seconds * 1e3:>14.3f} {flat_seconds * 1e3:>13.3f} "
            f"{speedups[count]:>7.1f}x"
        )
        records.append(
            {
                "op": "weighted_average",
                "config": f"{regime}_K{count}",
                "ms": round(flat_seconds * 1e3, 3),
                "reference_ms": round(dict_seconds * 1e3, 3),
                "speedup": round(speedups[count], 3),
            }
        )
    return lines, speedups, records


def test_param_ops_throughput():
    deep = deep_state()
    shallow = routenet_state()
    lines = [
        "Parameter-engine throughput: flat buffers vs the dict/stack path",
        "",
        f"Weighted averaging, deep estimator ({len(deep)} tensors, "
        f"{sum(v.size for v in deep.values()):,} values):",
    ]
    deep_lines, deep_speedups, deep_records = bench_aggregation(deep, "deep")
    lines += deep_lines
    lines += [
        "",
        f"Weighted averaging, RouteNet ({len(shallow)} tensors, "
        f"{sum(v.size for v in shallow.values()):,} values; memory-bound regime):",
    ]
    shallow_lines, shallow_speedups, shallow_records = bench_aggregation(shallow, "routenet")
    lines += shallow_lines

    lines += [
        "",
        "Wire codecs (encode + decode of one RouteNet state):",
        f"{'codec':>22} {'dict ms':>10} {'flat ms':>10} {'speedup':>8}",
    ]
    from repro.fl.transport.codecs import IdentityCodec, QuantizationCodec, TopKCodec

    # Codec inputs in wire (sorted) order — the layout every codec-decoded
    # state has, i.e. the hot path of delta-encoded rounds.
    sorted_flat = FlatState.from_items((name, shallow[name]) for name in sorted(shallow))
    codecs = [
        IdentityCodec("float64"),
        IdentityCodec("float32"),
        QuantizationCodec(num_bits=8, deflate=False),
        QuantizationCodec(num_bits=8, deflate=True),
        TopKCodec(keep_fraction=0.1),
    ]
    codec_speedups = {}
    codec_records = []
    for codec in codecs:
        def roundtrip(state):
            return codec.decode(codec.encode(state))

        dict_seconds = best_of(lambda: roundtrip(dict(shallow)))
        flat_seconds = best_of(lambda: roundtrip(sorted_flat))
        assert codec.encode(dict(shallow)).data == codec.encode(sorted_flat).data
        codec_speedups[codec.describe()] = dict_seconds / flat_seconds
        codec_records.append(
            {
                "op": "codec_roundtrip",
                "config": codec.describe(),
                "ms": round(flat_seconds * 1e3, 3),
                "reference_ms": round(dict_seconds * 1e3, 3),
                "speedup": round(codec_speedups[codec.describe()], 3),
            }
        )
        lines.append(
            f"{codec.describe():>22} {dict_seconds * 1e3:>10.3f} {flat_seconds * 1e3:>10.3f} "
            f"{codec_speedups[codec.describe()]:>7.1f}x"
        )

    lines += [
        "",
        f"required: flat >= dict everywhere; >= {REQUIRED_AGGREGATION_SPEEDUP:.0f}x on "
        "256-client weighted averaging of the deep state",
    ]
    report = "\n".join(lines)
    write_result("param_ops", report)
    write_records("param_ops", deep_records + shallow_records + codec_records)
    print("\n" + report)

    assert deep_speedups[256] >= REQUIRED_AGGREGATION_SPEEDUP, deep_speedups
    for regime, speedups in (("deep", deep_speedups), ("routenet", shallow_speedups)):
        for count, speedup in speedups.items():
            assert speedup >= 1.0, (
                f"flat aggregation slower than dict path at K={count} ({regime} state)"
            )
    # Codec round-trips are zlib/argpartition-bound, so the flat margin is
    # small (1.1-1.2x); allow scheduler noise on shared CI runners while
    # still catching a real regression of the flat paths.
    for name, speedup in codec_speedups.items():
        assert speedup >= 0.8, f"flat codec path slower than dict path for {name}"
