"""Ablation: the FedProx proximal term under client heterogeneity.

Section 4.1 of the paper argues that FedProx's proximal term is what keeps
decentralized training stable on heterogeneous routability data.  This
ablation compares FedAvg (mu = 0) against FedProx at the paper's mu and at a
much stronger mu, all with FLNet on the reduced smoke corpus (three clients,
one per suite style), and reports the resulting average AUC and the client
drift (mean pairwise distance between client models before aggregation).
"""

from dataclasses import replace

from conftest import write_result

from repro.experiments import ExperimentRunner, smoke
from repro.fl import create_algorithm, evaluate_result


def run_mu_sweep():
    config = smoke("flnet")
    runner = ExperimentRunner(config)
    clients = runner.federated_clients()
    outcomes = {}
    for label, algorithm, mu in (
        ("fedavg (mu=0)", "fedavg", 0.0),
        ("fedprox (mu=1e-4)", "fedprox", 1e-4),
        ("fedprox (mu=1e-1)", "fedprox", 1e-1),
    ):
        runner.config.fl = replace(config.fl, proximal_mu=mu)
        training = create_algorithm(algorithm, clients, runner.model_factory(), runner.config.fl).run()
        evaluation = evaluate_result(training, clients)
        drift = training.history[-1].extra.get("client_drift", float("nan"))
        outcomes[label] = (evaluation.average_auc, drift)
    return outcomes


def test_ablation_fedprox_mu(benchmark):
    outcomes = benchmark.pedantic(run_mu_sweep, rounds=1, iterations=1)

    assert len(outcomes) == 3
    for auc, _ in outcomes.values():
        assert 0.0 <= auc <= 1.0

    lines = ["Ablation: FedAvg vs FedProx proximal strength (FLNet, smoke corpus)", ""]
    lines.append(f"{'Setting':<22}{'avg AUC':>10}{'client drift':>15}")
    for label, (auc, drift) in outcomes.items():
        lines.append(f"{label:<22}{auc:>10.3f}{drift:>15.3f}")
    text = "\n".join(lines)
    print("\n" + text)
    write_result("ablation_fedprox_mu", text)
