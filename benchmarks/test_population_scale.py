"""Population-scale aggregation: O(P) server memory at growing cohort sizes.

The streaming aggregation tier promises that server memory for one round is
bounded by the model size P, not by the cohort size K.  This benchmark folds
K client updates (P = 20,000 parameters) into a
:class:`~repro.fl.aggregation.StreamingAccumulator` for K from 1e2 to 1e5 and
measures the peak traced allocation of each round:

* **flat memory** — the peak must stay within 1.5x across the whole sweep
  (the parity buffer plus one running sum dominate, both independent of K);
* **near-linear time** — per-fold cost must not grow with K (each fold is
  one axpy);
* **contrast** — the historical GEMV path materializes the (K, P) work
  matrix, so its peak grows linearly in K; the K=1e3 row shows the gap.

A second measurement drives an actual sampled round loop over a virtualized
10,000-client population (cohort 9, 2 rounds) and asserts the laziness
contract end-to-end: zero clients materialized before sampling, peak
materialization bounded by the cohort, every fold released.

Results go to ``benchmarks/results/population_scale.{txt,json}``; the CI
perf-smoke job runs this module.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from conftest import MemoryProbe, synthetic_dataset, write_records, write_result
from repro.data.clients import ClientData, ClientSpec
from repro.fl import (
    ClientDirectory,
    FederatedServer,
    FLConfig,
    SeededModelFactory,
    create_aggregator,
    create_algorithm,
    create_scheduler,
)
from repro.fl.parameters import (
    StateLayout,
    release_aggregation_scratch,
    weighted_average,
    wrap_flat,
)

MODEL_SIZE = 20_000
STREAMING_COHORTS = (100, 1_000, 10_000, 100_000)
GEMV_COHORTS = (100, 1_000)  # the (K, P) matrix forbids going further
PEAK_FLATNESS = 1.5  # max/min peak ratio across the streaming sweep
POPULATION = 10_000
COHORT = 9
ROUNDS = 2

POPULATION_CONFIG = FLConfig(
    rounds=ROUNDS,
    local_steps=2,
    finetune_steps=2,
    learning_rate=3e-3,
    batch_size=2,
    num_clusters=2,
    assigned_clusters=((1, 0), (2, 1)),
    ifca_eval_batches=1,
    proximal_mu=0.0,
)


def update_layout() -> StateLayout:
    return StateLayout.from_state({"dense.weight": np.zeros(MODEL_SIZE)})


def fold_round(mode: str, cohort: int) -> Dict[str, object]:
    """One aggregation round of ``cohort`` synthetic updates, measured."""
    layout = update_layout()
    base = np.random.default_rng(7).standard_normal(MODEL_SIZE)
    aggregator = create_aggregator(mode)

    def make_update(index: int) -> np.ndarray:
        # Deterministic per-client variation without per-fold RNG cost.
        return base * (1.0 + 1e-6 * index) + 1e-3 * index

    release_aggregation_scratch()
    with MemoryProbe() as probe:
        start = time.perf_counter()
        if mode == "gemv":
            states = [wrap_flat(layout, make_update(k)) for k in range(cohort)]
            result = weighted_average(states, [1.0 + (k % 7) for k in range(cohort)])
        else:
            accumulator = aggregator.accumulator()
            for k in range(cohort):
                accumulator.fold(wrap_flat(layout, make_update(k)), 1.0 + (k % 7))
            result = accumulator.result()
        seconds = time.perf_counter() - start
    release_aggregation_scratch()
    assert result.vector.shape == (MODEL_SIZE,)
    return {
        "op": "aggregate_round",
        "config": f"{mode}_K{cohort}",
        "mode": mode,
        "cohort": cohort,
        "model_size": MODEL_SIZE,
        "ms": round(seconds * 1e3, 3),
        "us_per_fold": round(seconds * 1e6 / cohort, 3),
        **probe.record(),
    }


class PopulationModelBuilder:
    """Picklable tiny-model builder for the virtualized roster."""

    def __call__(self, seed: int):
        from repro.models import FLNet

        return FLNet(6, hidden_filters=8, kernel_size=5, seed=seed)


def population_round_loop() -> Dict[str, object]:
    """A sampled streaming round loop over a 10,000-client population."""
    base = [
        ClientData(
            ClientSpec(client_id, "synthetic", 1, 1, 8, 2),
            synthetic_dataset(client_id, f"pop_train_{client_id}", 8),
            synthetic_dataset(100 + client_id, f"pop_test_{client_id}", 2),
        )
        for client_id in (1, 2)
    ]
    factory = SeededModelFactory(PopulationModelBuilder(), base_seed=0)
    directory = ClientDirectory(base, factory, POPULATION_CONFIG, population=POPULATION)
    server = FederatedServer(aggregator=create_aggregator("streaming"))
    eager_before = directory.eager_clients
    with MemoryProbe() as probe:
        start = time.perf_counter()
        algorithm = create_algorithm(
            "fedavg",
            list(directory.handles),
            factory,
            POPULATION_CONFIG,
            server=server,
            scheduler=create_scheduler(clients_per_round=COHORT, seed=0),
        )
        training = algorithm.run()
        seconds = time.perf_counter() - start
    assert training.global_state is not None
    record = {
        "op": "population_round_loop",
        "config": f"population{POPULATION}_cohort{COHORT}",
        "population": POPULATION,
        "cohort": COHORT,
        "rounds": ROUNDS,
        "ms": round(seconds * 1e3, 3),
        "eager_clients_before_sampling": eager_before,
        "eager_clients_after": directory.eager_clients,
        "peak_materialized": directory.peak_materialized,
        "total_materializations": directory.total_materializations,
        "total_releases": directory.total_releases,
        "folded_updates": server.folded_updates,
        **probe.record(),
    }
    return record


def test_population_scale():
    records: List[Dict[str, object]] = []
    lines = [
        f"Population-scale aggregation (P = {MODEL_SIZE:,} parameters)",
        "",
        f"{'mode':>10} {'K clients':>10} {'round ms':>10} {'us/fold':>9} {'peak MiB':>9}",
    ]
    streaming_rows: Dict[int, Dict[str, object]] = {}
    for cohort in STREAMING_COHORTS:
        row = fold_round("streaming", cohort)
        streaming_rows[cohort] = row
        records.append(row)
    gemv_rows: Dict[int, Dict[str, object]] = {}
    for cohort in GEMV_COHORTS:
        row = fold_round("gemv", cohort)
        gemv_rows[cohort] = row
        records.append(row)
    for row in records:
        lines.append(
            f"{row['mode']:>10} {row['cohort']:>10,} {row['ms']:>10.1f} "
            f"{row['us_per_fold']:>9.2f} {row['peak_traced_bytes'] / 2**20:>9.1f}"
        )

    peaks = {cohort: row["peak_traced_bytes"] for cohort, row in streaming_rows.items()}
    flatness = max(peaks.values()) / min(peaks.values())
    per_fold = {cohort: row["us_per_fold"] for cohort, row in streaming_rows.items()}
    # Time growth between K=1e3 and K=1e5 relative to perfect linearity
    # (K=1e2 rounds are too short to time reliably).
    linearity = per_fold[100_000] / per_fold[1_000]
    gemv_contrast = gemv_rows[1_000]["peak_traced_bytes"] / peaks[1_000]

    loop = population_round_loop()
    records.append(loop)
    lines += [
        "",
        f"streaming peak flatness K=1e2..1e5: {flatness:.3f}x (required <= {PEAK_FLATNESS}x)",
        f"per-fold time growth K=1e3 -> 1e5: {linearity:.2f}x (near-linear; required <= 5x)",
        f"gemv peak / streaming peak at K=1e3: {gemv_contrast:.1f}x (the O(K*P) matrix)",
        "",
        f"Virtualized population round loop ({POPULATION:,} clients, cohort {COHORT}, "
        f"{ROUNDS} rounds, streaming):",
        f"  round loop ms: {loop['ms']:.0f}",
        f"  eager clients before sampling: {loop['eager_clients_before_sampling']}",
        f"  peak materialized: {loop['peak_materialized']} (cohort bound: {COHORT})",
        f"  materializations/releases: {loop['total_materializations']}/{loop['total_releases']}",
        f"  folded updates: {loop['folded_updates']}",
    ]
    report = "\n".join(lines)
    write_result("population_scale", report)
    write_records("population_scale", records)
    print("\n" + report)

    assert flatness <= PEAK_FLATNESS, peaks
    assert linearity <= 5.0, per_fold
    assert gemv_contrast >= 10.0, (gemv_rows, peaks)
    assert loop["eager_clients_before_sampling"] == 0
    assert loop["eager_clients_after"] == 0
    assert loop["peak_materialized"] <= COHORT
    assert loop["folded_updates"] == ROUNDS * COHORT
    assert loop["total_materializations"] == loop["total_releases"]
