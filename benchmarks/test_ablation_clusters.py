"""Ablation: number of clusters in IFCA.

The paper runs IFCA with C = 4 clusters over 9 clients drawn from four
benchmark suites.  On the reduced smoke corpus (three clients, one per suite
style) this ablation sweeps the cluster count: C = 1 collapses IFCA to plain
FedProx-style training, while larger C lets dissimilar clients separate into
their own models at the cost of less data per cluster.
"""

from dataclasses import replace

from conftest import write_result

from repro.experiments import ExperimentRunner, smoke
from repro.fl import create_algorithm, evaluate_result

CLUSTER_COUNTS = (1, 2, 3)


def run_cluster_sweep():
    base = smoke("flnet")
    runner = ExperimentRunner(base)
    clients = runner.federated_clients()
    outcomes = {}
    for count in CLUSTER_COUNTS:
        fl = replace(base.fl, num_clusters=count)
        training = create_algorithm("ifca", clients, runner.model_factory(), fl).run()
        evaluation = evaluate_result(training, clients)
        outcomes[count] = evaluation.average_auc
    return outcomes


def test_ablation_ifca_clusters(benchmark):
    outcomes = benchmark.pedantic(run_cluster_sweep, rounds=1, iterations=1)

    assert set(outcomes) == set(CLUSTER_COUNTS)
    for auc in outcomes.values():
        assert 0.0 <= auc <= 1.0

    lines = [
        "Ablation: IFCA cluster count (FLNet, smoke corpus, 3 clients)",
        "(the paper uses C=4 over 9 clients from 4 suites)",
        "",
        f"{'clusters':<10}{'avg AUC':>10}",
    ]
    for count, auc in sorted(outcomes.items()):
        lines.append(f"{count:<10d}{auc:>10.3f}")
    text = "\n".join(lines)
    print("\n" + text)
    write_result("ablation_ifca_clusters", text)
