"""Ablation: is Batch Normalization what breaks RouteNet under FL?

Section 4.2 of the paper attributes part of RouteNet's degradation under
decentralized training to Batch Normalization: the running statistics that BN
accumulates are corrupted by frequent parameter aggregation.  If that
attribution is right, remedies that keep or remove those statistics should
recover accuracy.  This ablation trains, on the reduced smoke corpus under
FedProx, three configurations of the same architecture:

* RouteNet with BatchNorm (the original),
* RouteNet with BatchNorm but trained with FedBN (BN layers stay local), and
* RouteNet-GN, where every BatchNorm is replaced by GroupNorm (no running
  statistics at all),

and reports the average AUC of each next to FLNet's (which has no
normalization and is the paper's answer to the same problem).
"""

from dataclasses import replace

from conftest import write_result

from repro.experiments import ExperimentRunner, smoke
from repro.fl import create_algorithm, evaluate_result


def _config(model):
    """The smoke preset with a slightly larger budget (deep nets need more steps)."""
    base = smoke(model)
    return replace(base, fl=replace(base.fl, rounds=3, local_steps=8))


def run_norm_study():
    outcomes = {}
    # RouteNet with BatchNorm: plain FedProx and FedBN.
    runner_bn = ExperimentRunner(_config("routenet"))
    clients_bn = runner_bn.federated_clients()
    for label, algorithm in (("routenet (BN) + fedprox", "fedprox"), ("routenet (BN) + fedbn", "fedbn")):
        training = create_algorithm(algorithm, clients_bn, runner_bn.model_factory(), runner_bn.config.fl).run()
        outcomes[label] = evaluate_result(training, clients_bn).average_auc

    # RouteNet with GroupNorm under plain FedProx.
    runner_gn = ExperimentRunner(_config("routenet_gn"))
    clients_gn = runner_gn.federated_clients()
    training = create_algorithm("fedprox", clients_gn, runner_gn.model_factory(), runner_gn.config.fl).run()
    outcomes["routenet (GN) + fedprox"] = evaluate_result(training, clients_gn).average_auc

    # FLNet reference (no normalization at all).
    runner_fl = ExperimentRunner(_config("flnet"))
    clients_fl = runner_fl.federated_clients()
    training = create_algorithm("fedprox", clients_fl, runner_fl.model_factory(), runner_fl.config.fl).run()
    outcomes["flnet (no norm) + fedprox"] = evaluate_result(training, clients_fl).average_auc
    return outcomes


def test_ablation_norm_layers(benchmark):
    outcomes = benchmark.pedantic(run_norm_study, rounds=1, iterations=1)

    assert len(outcomes) == 4
    for auc in outcomes.values():
        assert 0.0 <= auc <= 1.0

    lines = [
        "Ablation: normalization layers under decentralized training (smoke corpus, FedProx)",
        "(the paper attributes RouteNet's degradation partly to BatchNorm's aggregated statistics)",
        "",
        f"{'Configuration':<30}{'avg AUC':>10}",
    ]
    for label, auc in outcomes.items():
        lines.append(f"{label:<30}{auc:>10.3f}")
    text = "\n".join(lines)
    print("\n" + text)
    write_result("ablation_norm_layers", text)
