"""Ablation: model robustness to federated parameter aggregation.

Section 4.2 claims FLNet's small size and lack of batch normalization make it
robust to the parameter fluctuation introduced by aggregation, while deeper
batch-normalized models (RouteNet, PROS) degrade.  This ablation measures,
for each of the three models on the reduced smoke corpus, centralized-training
AUC vs. FedProx AUC and reports the degradation (centralized minus federated)
— the quantity the paper's argument is about.
"""

from conftest import write_result

from repro.experiments import ExperimentRunner, smoke


def run_robustness_study():
    results = {}
    for model in ("flnet", "routenet", "pros"):
        runner = ExperimentRunner(smoke(model))
        outcome = runner.run(["centralized", "fedprox"])
        central = outcome.average_auc("centralized")
        federated = outcome.average_auc("fedprox")
        results[model] = (central, federated, central - federated)
    return results


def test_ablation_model_robustness(benchmark):
    results = benchmark.pedantic(run_robustness_study, rounds=1, iterations=1)

    assert set(results) == {"flnet", "routenet", "pros"}
    for central, federated, _ in results.values():
        assert 0.0 <= central <= 1.0
        assert 0.0 <= federated <= 1.0

    lines = [
        "Ablation: centralized vs FedProx AUC per model (smoke corpus)",
        "(degradation = centralized - federated; the paper expects FLNet to degrade least)",
        "",
        f"{'Model':<12}{'centralized':>13}{'fedprox':>10}{'degradation':>13}",
    ]
    for model, (central, federated, degradation) in results.items():
        lines.append(f"{model:<12}{central:>13.3f}{federated:>10.3f}{degradation:>13.3f}")
    text = "\n".join(lines)
    print("\n" + text)
    write_result("ablation_model_robustness", text)
