"""Simulated time-to-target of round policies under heavy-tail stragglers.

The scheduling subsystem's reason to exist: with heavy-tailed client
latencies, a synchronous barrier waits for the slowest straggler every
round, while a deadline cutoff (with over-selection) and FedBuff-style
buffered-asynchronous aggregation keep the virtual clock moving.  This
benchmark runs seeded FedAvg on the smoke preset under all three policies
with the same Pareto straggler model and reports, per policy: participation
counts, dropped stragglers, total simulated wall-clock time, simulated time
until the training loss first reaches the full-sync run's final level
("time to target"), and final ROC AUC.

The acceptance bars: the deadline policy must actually drop stragglers, the
asynchronous policies must finish their simulated schedule faster than the
synchronous barrier, and FedBuff must complete its aggregation budget.
"""

from __future__ import annotations

import math
from dataclasses import replace

from conftest import CACHE_DIR, write_records, write_result

from repro.experiments import ExperimentRunner, smoke

ROUNDS = 6

#: Policy label -> scheduling options applied on top of the common base.
POLICIES = {
    "full-sync": dict(sampler="full", round_policy="sync"),
    "deadline": dict(
        clients_per_round=2, round_policy="deadline", deadline=12.0, over_selection=1.5
    ),
    "fedbuff": dict(clients_per_round=2, round_policy="fedbuff", buffer_size=2),
}


def run_policy(options):
    config = smoke("flnet").with_algorithms(["fedavg"]).with_scheduling(
        straggler_model="heavytail", **options
    )
    config = replace(config, fl=replace(config.fl, rounds=ROUNDS))
    runner = ExperimentRunner(config, cache_dir=CACHE_DIR)
    outcome = runner.run().outcomes[0]
    return outcome


def time_to_target(outcome, target_loss: float) -> float:
    """Simulated time at which the mean round loss first reaches the target."""
    for record in outcome.training.history:
        if not math.isnan(record.mean_loss) and record.mean_loss <= target_loss:
            return float(record.extra["simulated_time_s"])
    return float("inf")


def run_all():
    return {name: run_policy(options) for name, options in POLICIES.items()}


def test_scheduling_policies(benchmark):
    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)

    sync = outcomes["full-sync"].scheduling
    deadline = outcomes["deadline"].scheduling
    fedbuff = outcomes["fedbuff"].scheduling

    # The deadline policy must have dropped stragglers (heavy tail + 12s cap)
    # and its simulated schedule must beat the synchronous barrier.
    assert deadline.total_dropped > 0
    assert deadline.simulated_seconds <= ROUNDS * 12.0 + 1e-9
    assert deadline.simulated_seconds < sync.simulated_seconds
    # FedBuff completes its aggregation budget without a barrier and must
    # also finish faster than full sync.
    assert fedbuff.buffered_aggregations == ROUNDS
    assert fedbuff.simulated_seconds < sync.simulated_seconds

    # "Target" = the loss level full-sync training ends at.
    target = outcomes["full-sync"].training.history[-1].mean_loss
    reach_times = {name: time_to_target(outcome, target) for name, outcome in outcomes.items()}

    lines = [
        "Simulated time-to-target of round policies under heavy-tail stragglers",
        f"(smoke preset, FedAvg, {ROUNDS} rounds, Pareto latencies scale=5 shape=1.5, seed 0)",
        "",
        f"{'policy':<12}{'selected':>9}{'arrived':>9}{'dropped':>9}"
        f"{'sim time':>11}{'t-to-target':>13}{'avg AUC':>9}",
    ]
    for name, outcome in outcomes.items():
        sched = outcome.scheduling
        reach = reach_times[name]
        reach_text = f"{reach:,.1f} s" if math.isfinite(reach) else "n/a"
        lines.append(
            f"{name:<12}{sched.total_selected:>9d}{sched.total_arrived:>9d}"
            f"{sched.total_dropped:>9d}{sched.simulated_seconds:>9,.1f} s"
            f"{reach_text:>13}{outcome.evaluation.average_auc:>9.3f}"
        )
    lines.append("")
    lines.append(
        f"full-sync waits for every straggler ({sync.simulated_seconds:,.1f} s); "
        f"deadline cuts the schedule to {deadline.simulated_seconds:,.1f} s by dropping "
        f"{deadline.total_dropped} update(s); fedbuff finishes {fedbuff.buffered_aggregations} "
        f"buffered aggregations in {fedbuff.simulated_seconds:,.1f} s at mean staleness "
        f"{fedbuff.mean_staleness:.2f}"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_result("scheduling_policies", text)
    write_records(
        "scheduling_policies",
        [
            {
                "op": "simulated_schedule",
                "config": name,
                "simulated_seconds": round(outcome.scheduling.simulated_seconds, 1),
                "time_to_target_seconds": (
                    round(reach_times[name], 1) if math.isfinite(reach_times[name]) else None
                ),
                "selected": outcome.scheduling.total_selected,
                "dropped": outcome.scheduling.total_dropped,
                "average_auc": round(outcome.evaluation.average_auc, 4),
            }
            for name, outcome in outcomes.items()
        ],
    )
