"""Ablation: the alpha parameter of alpha-portion sync.

The paper evaluates alpha-portion sync at alpha = 0.5 (each client's own
parameters get half the weight in its customized aggregate).  This ablation
sweeps alpha on the reduced smoke corpus: alpha -> 0 recovers plain FedProx
(fully shared model), alpha -> 1 approaches local-only training (each client
mostly keeps its own parameters), and intermediate values trade generality
for personalization.
"""

from dataclasses import replace

from conftest import write_result

from repro.experiments import ExperimentRunner, smoke
from repro.fl import create_algorithm, evaluate_result

ALPHAS = (0.1, 0.5, 0.9)


def run_alpha_sweep():
    base = smoke("flnet")
    runner = ExperimentRunner(base)
    clients = runner.federated_clients()
    outcomes = {}
    for alpha in ALPHAS:
        fl = replace(base.fl, alpha=alpha)
        training = create_algorithm("fedprox_alpha", clients, runner.model_factory(), fl).run()
        evaluation = evaluate_result(training, clients)
        outcomes[alpha] = evaluation.average_auc
    return outcomes


def test_ablation_alpha_sync(benchmark):
    outcomes = benchmark.pedantic(run_alpha_sweep, rounds=1, iterations=1)

    assert set(outcomes) == set(ALPHAS)
    for auc in outcomes.values():
        assert 0.0 <= auc <= 1.0

    lines = [
        "Ablation: alpha-portion sync personalization strength (FLNet, smoke corpus)",
        "(alpha is the weight of a client's own parameters; the paper uses 0.5)",
        "",
        f"{'alpha':<8}{'avg AUC':>10}",
    ]
    for alpha, auc in sorted(outcomes.items()):
        lines.append(f"{alpha:<8.1f}{auc:>10.3f}")
    text = "\n".join(lines)
    print("\n" + text)
    write_result("ablation_alpha_sync", text)
