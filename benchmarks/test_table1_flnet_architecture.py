"""Table 1: FLNet model architecture configuration.

The paper's Table 1 is the full specification of FLNet: two convolutions with
9x9 kernels, 64 hidden filters, ReLU after the first layer, no activation
after the second, and no batch normalization anywhere.  The bench
instantiates the model, verifies the configuration matches the paper exactly,
and times model construction plus one forward pass.
"""

import numpy as np

from conftest import write_result

from repro.experiments import PAPER_TABLE1_FLNET_ARCHITECTURE
from repro.models import FLNet

CHANNELS = 7
GRID = 32


def build_and_forward():
    model = FLNet(CHANNELS, seed=0)
    output = model.predict(np.zeros((1, CHANNELS, GRID, GRID)))
    return model, output


def test_table1_flnet_architecture(benchmark):
    model, output = benchmark.pedantic(build_and_forward, rounds=3, iterations=1)

    table = model.architecture_table()
    assert table == PAPER_TABLE1_FLNET_ARCHITECTURE
    assert output.shape == (1, 1, GRID, GRID)
    # The design constraints behind Table 1 (Section 4.2): no batch norm and
    # far fewer parameters than the baseline estimators.
    assert not any("running" in name for name, _ in model.named_buffers())

    lines = ["Table 1: FLNet Model Architecture Configuration", ""]
    lines.append(f"{'Layer':<14}{'Kernel size':<14}{'#Filters':<10}{'Activation'}")
    for row in table:
        lines.append(
            f"{row['layer']:<14}{row['kernel_size']:<14}{row['filters']:<10}{row['activation']}"
        )
    lines.append("")
    lines.append(f"Trainable parameters: {model.num_parameters()}")
    text = "\n".join(lines)
    print("\n" + text)
    write_result("table1_flnet_architecture", text)
