"""Table 4: testing accuracy (ROC AUC) on routability prediction with RouteNet.

Same training-method grid as Table 3 but with the RouteNet baseline
estimator.  The paper's qualitative finding for this table: RouteNet is
competitive (or better) under local / centralized training, but its depth and
batch-normalization layers make it degrade under decentralized training,
where only local fine-tuning recovers the accuracy.
"""

from conftest import render_table, run_table_experiment, write_result


def run():
    return run_table_experiment("routenet")


def test_table4_routenet(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)

    assert len(result.rows) == 8
    for row in result.rows:
        assert len(row.per_client_auc) == 9
        assert all(0.0 <= auc <= 1.0 for auc in row.per_client_auc.values())

    text = render_table(result, "Table 4: ROC AUC on routability prediction with RouteNet")
    print("\n" + text)
    write_result("table4_routenet", text)
