"""Ablation: differential privacy noise vs. accuracy.

The paper defers privacy engineering to the standard FL toolbox; this
benchmark makes the cost of that toolbox concrete.  DP-FedProx clips every
client's per-round update and adds Gaussian noise before aggregation; the
sweep reports the achieved average AUC and the accumulated (epsilon, delta)
guarantee for increasing noise multipliers, next to non-private FedProx.
"""

from conftest import write_result

from repro.experiments import ExperimentRunner, smoke
from repro.fl import DPFedProx, PrivacyConfig, create_algorithm, evaluate_result

NOISE_MULTIPLIERS = (0.0, 0.5, 2.0)


def run_privacy_sweep():
    config = smoke("flnet")
    runner = ExperimentRunner(config)
    clients = runner.federated_clients()

    baseline = create_algorithm("fedprox", clients, runner.model_factory(), config.fl).run()
    outcomes = {"fedprox (no DP)": (evaluate_result(baseline, clients).average_auc, float("inf"))}

    for noise in NOISE_MULTIPLIERS:
        privacy = PrivacyConfig(clip_norm=0.5, noise_multiplier=noise)
        algorithm = DPFedProx(clients, runner.model_factory(), config.fl, privacy=privacy)
        training = algorithm.run()
        auc = evaluate_result(training, clients).average_auc
        outcomes[f"dp_fedprox (z={noise})"] = (auc, algorithm.accountant.epsilon())
    return outcomes


def test_ablation_privacy(benchmark):
    outcomes = benchmark.pedantic(run_privacy_sweep, rounds=1, iterations=1)

    assert len(outcomes) == len(NOISE_MULTIPLIERS) + 1
    for auc, epsilon in outcomes.values():
        assert 0.0 <= auc <= 1.0
        assert epsilon > 0.0 or epsilon == float("inf") or epsilon == 0.0

    lines = [
        "Ablation: differential privacy noise vs accuracy (FLNet, smoke corpus)",
        "(client-level DP: update clipping 0.5 + Gaussian noise, zCDP accounting, delta=1e-5)",
        "",
        f"{'Setting':<24}{'avg AUC':>10}{'epsilon':>12}",
    ]
    for label, (auc, epsilon) in outcomes.items():
        eps_text = "inf" if epsilon == float("inf") else f"{epsilon:.2f}"
        lines.append(f"{label:<24}{auc:>10.3f}{eps_text:>12}")
    text = "\n".join(lines)
    print("\n" + text)
    write_result("ablation_privacy", text)
