"""Benchmark of the global-routing substrate.

Routes one synthetic design from each benchmark-suite style on a 24x24 grid
and reports wirelength, overflow before/after negotiated rip-up-and-reroute,
and the correlation between the router's bin-level congestion and the fast
probabilistic congestion model used for bulk dataset generation.  This is a
substrate benchmark (the paper's tables do not include it); it documents
that the "router" label source produces congestion consistent with the
"model" source the corpora are built with.
"""

import numpy as np
from conftest import write_result

from repro.eda import (
    GlobalRouterConfig,
    PlacementConfig,
    Placer,
    estimate_congestion,
    generate_design,
    route_placement,
)

GRID = 24
SUITE_SEEDS = {"iscas89": 3, "itc99": 5, "iwls05": 7, "ispd15": 9}


def run_router_study():
    placer = Placer()
    results = {}
    for suite, seed in SUITE_SEEDS.items():
        design = generate_design(suite, f"router_bench_{suite}", seed=seed)
        placement = placer.place(
            design, PlacementConfig(grid_width=GRID, grid_height=GRID, utilization=0.72, seed=seed)
        )
        routed = route_placement(placement, GlobalRouterConfig(max_ripup_iterations=4))
        model_congestion = estimate_congestion(placement)["congestion"]
        routed_congestion = routed.congestion_maps()["congestion"]
        correlation = float(
            np.corrcoef(model_congestion.ravel(), routed_congestion.ravel())[0, 1]
        )
        results[suite] = {
            "cells": design.netlist.num_cells,
            "nets": len(routed.routes),
            "wirelength_bins": routed.total_wirelength_bins,
            "overflow_initial": routed.initial_overflow,
            "overflow_final": routed.total_overflow,
            "iterations": routed.iterations,
            "correlation": correlation,
        }
    return results


def test_global_router(benchmark):
    results = benchmark.pedantic(run_router_study, rounds=1, iterations=1)

    assert set(results) == set(SUITE_SEEDS)
    for stats in results.values():
        assert stats["wirelength_bins"] > 0
        assert stats["overflow_final"] <= stats["overflow_initial"] + 1e-9
        assert stats["correlation"] > 0.2

    header = (
        f"{'Suite':<10}{'cells':>7}{'nets':>7}{'WL (bins)':>11}"
        f"{'overflow pre':>14}{'overflow post':>15}{'iters':>7}{'corr':>7}"
    )
    lines = ["Global router benchmark (24x24 grid, negotiated rip-up and reroute)", "", header]
    for suite, stats in results.items():
        lines.append(
            f"{suite:<10}{stats['cells']:>7d}{stats['nets']:>7d}{stats['wirelength_bins']:>11d}"
            f"{stats['overflow_initial']:>14.1f}{stats['overflow_final']:>15.1f}"
            f"{stats['iterations']:>7d}{stats['correlation']:>7.2f}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    write_result("global_router", text)
