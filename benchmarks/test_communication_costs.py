"""Communication cost of decentralized training, per estimator and algorithm.

Federated training's practical footprint is the parameter traffic it
generates.  This benchmark (no training involved) sizes each of the three
estimators at the paper's configuration (9 clients, R = 50 rounds) and tables
the total traffic of every algorithm in the registry, plus the savings that
top-k sparsification and 8-bit quantization realize on one FLNet state
(real encoded payloads against the state's real float64 in-memory size; see
``test_transport_compression`` for *measured* traffic of full training runs).
"""

from conftest import write_result

from repro.fl import (
    BYTES_PER_FLOAT32,
    compression_error,
    estimate_communication,
    quantize_state,
    state_bytes,
    topk_sparsify,
)
from repro.models.registry import available_models, create_model

NUM_CLIENTS = 9
ROUNDS = 50
CHANNELS = 6
ALGORITHMS_TO_TABLE = ("fedavg", "fedprox", "fedprox_lg", "ifca", "fedprox_finetune", "fedbn")


def run_costs():
    per_model = {}
    for name in available_models():
        state = create_model(name, in_channels=CHANNELS, seed=0).state_dict()
        rows = {}
        for algorithm in ALGORITHMS_TO_TABLE:
            report = estimate_communication(
                algorithm, state, num_clients=NUM_CLIENTS, rounds=ROUNDS, global_fraction=0.8, num_clusters=4
            )
            rows[algorithm] = report.total_bytes
        # Sized at the analytic model's float32 wire precision so the column
        # stays comparable with the per-algorithm totals next to it.
        per_model[name] = (state_bytes(state, BYTES_PER_FLOAT32), rows)

    flnet_state = create_model("flnet", in_channels=CHANNELS, seed=0).state_dict()
    compression = {
        "top-10% sparsification": topk_sparsify(flnet_state, keep_fraction=0.10),
        "8-bit quantization": quantize_state(flnet_state, num_bits=8),
    }
    compression_rows = {
        label: (result.compression_ratio, compression_error(flnet_state, result.state))
        for label, result in compression.items()
    }
    return per_model, compression_rows


def test_communication_costs(benchmark):
    per_model, compression_rows = benchmark.pedantic(run_costs, rounds=1, iterations=1)

    assert set(per_model) == set(available_models())
    for _, rows in per_model.values():
        assert rows["fedbn"] <= rows["fedprox"]
        assert rows["ifca"] >= rows["fedprox"]

    lines = [
        f"Communication cost ({NUM_CLIENTS} clients, {ROUNDS} rounds, "
        "analytic model at float32 wire precision)",
        "",
        f"{'Model':<10}{'state (MB)':>12}" + "".join(f"{name:>18}" for name in ALGORITHMS_TO_TABLE),
    ]
    for model, (size, rows) in per_model.items():
        cells = "".join(f"{rows[name] / 1e6:>18.1f}" for name in ALGORITHMS_TO_TABLE)
        lines.append(f"{model:<10}{size / 1e6:>12.2f}{cells}")
    lines.append("")
    lines.append("Update compression on one FLNet state:")
    for label, (ratio, error) in compression_rows.items():
        lines.append(f"  {label:<26}{ratio:>6.1f}x smaller, relative L2 error {error:.4f}")
    text = "\n".join(lines)
    print("\n" + text)
    write_result("communication_costs", text)
