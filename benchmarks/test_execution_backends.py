"""Benchmark: serial vs. process-pool execution of one FedAvg round.

The execution engine's promise is twofold: a ``ProcessPoolBackend`` must be
**bit-identical** to ``SerialBackend`` for the same seed (asserted
unconditionally), and on a multi-core machine it must turn the 9-client
round from a sequential scan into a parallel map with measurable wall-clock
speedup (asserted when enough cores are available, always reported).

The 9 clients use synthetic feature/label grids rather than the EDA corpus:
the benchmark measures the execution engine, not data generation, and the
synthetic grids make it run in seconds.
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import write_result

from repro.data.dataset import PlacementSample, RoutabilityDataset
from repro.fl import (
    FederatedClient,
    FLConfig,
    ProcessPoolBackend,
    SeededModelFactory,
    SerialBackend,
    create_algorithm,
)
from repro.fl.parameters import flatten_state
from repro.models import FLNet

NUM_CLIENTS = 9
GRID = 16
CHANNELS = 6
SAMPLES_PER_CLIENT = 8
LOCAL_STEPS = 8
WORKERS = 4

BENCH_CONFIG = FLConfig(
    rounds=1,
    local_steps=LOCAL_STEPS,
    finetune_steps=1,
    learning_rate=2e-3,
    batch_size=4,
    seed=0,
)


class BenchModelBuilder:
    """Picklable FLNet builder (the process pool may need to ship clients)."""

    def __call__(self, seed: int) -> FLNet:
        return FLNet(CHANNELS, seed=seed)


def synthetic_dataset(client_id: int, name: str, samples: int) -> RoutabilityDataset:
    rng = np.random.default_rng(1000 + client_id)
    built = []
    for index in range(samples):
        features = rng.normal(size=(CHANNELS, GRID, GRID))
        label = (rng.random((GRID, GRID)) < 0.15).astype(np.float64)
        built.append(
            PlacementSample(
                features=features,
                label=label,
                design_name=f"synthetic_c{client_id}",
                suite="synthetic",
                placement_index=index,
            )
        )
    return RoutabilityDataset(built, name=name)


def fresh_clients() -> list:
    factory = SeededModelFactory(BenchModelBuilder(), base_seed=0)
    return [
        FederatedClient(
            client_id,
            synthetic_dataset(client_id, f"bench_train_{client_id}", SAMPLES_PER_CLIENT),
            synthetic_dataset(100 + client_id, f"bench_test_{client_id}", 2),
            factory,
            BENCH_CONFIG,
        )
        for client_id in range(1, NUM_CLIENTS + 1)
    ]


def run_round(backend):
    factory = SeededModelFactory(BenchModelBuilder(), base_seed=0)
    algorithm = create_algorithm("fedavg", fresh_clients(), factory, BENCH_CONFIG, backend=backend)
    try:
        if isinstance(backend, ProcessPoolBackend):
            # Pay pool spin-up outside the timed region: the pool persists
            # across rounds in a real run, so only steady-state is measured.
            backend._ensure_pool()
        start = time.perf_counter()
        training = algorithm.run()
        elapsed = time.perf_counter() - start
    finally:
        backend.close()
    return training, elapsed


def test_execution_backend_speedup(benchmark):
    def measure():
        serial_training, serial_seconds = run_round(SerialBackend())
        parallel_training, parallel_seconds = run_round(ProcessPoolBackend(workers=WORKERS))
        return serial_training, serial_seconds, parallel_training, parallel_seconds

    serial_training, serial_seconds, parallel_training, parallel_seconds = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    # Bit-identical aggregation is the hard guarantee, on any machine.
    serial_flat = flatten_state(serial_training.global_state)
    parallel_flat = flatten_state(parallel_training.global_state)
    assert np.array_equal(serial_flat, parallel_flat)
    assert [r.mean_loss for r in serial_training.history] == [
        r.mean_loss for r in parallel_training.history
    ]

    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else float("inf")
    cores = os.cpu_count() or 1
    lines = [
        "Execution backends: one 9-client FedAvg round, serial vs. process pool",
        f"({LOCAL_STEPS} local steps/client, FLNet, {GRID}x{GRID} synthetic grids, "
        f"{WORKERS} workers, {cores} cores)",
        "",
        f"{'backend':<12}{'seconds':>10}",
        f"{'serial':<12}{serial_seconds:>10.3f}",
        f"{'process':<12}{parallel_seconds:>10.3f}",
        "",
        f"speedup: {speedup:.2f}x",
        f"bit-identical global state: {np.array_equal(serial_flat, parallel_flat)}",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    write_result("execution_backends", text)

    if cores >= 4:
        # With 4 workers on >=4 cores the 9-way round must come out ahead of
        # the sequential scan even after IPC overhead.
        assert speedup > 1.2, f"expected parallel speedup on {cores} cores, got {speedup:.2f}x"
