"""Benchmark: serial vs. warm process-pool vs. warm thread-pool execution.

The execution engine's promise is twofold: the parallel backends must be
**bit-identical** to ``SerialBackend`` for the same seed (asserted
unconditionally), and on a multi-core machine they must turn the 9-client
round from a sequential scan into a parallel map that actually beats
serial (asserted when enough cores are available, always reported).  Both
pools are *warm*: workers are spawned once per backend lifetime
(``spawn_count``, asserted here too), so only steady-state rounds are
measured.

Since the compute-saturation engine, every backend also carries a BLAS
thread policy (default ``auto``): serial lets NumPy's BLAS spread one
client's GEMMs across every core, while each pool worker is pinned to
``cores // workers`` BLAS threads, so the workers x BLAS-threads product —
recorded per row as ``effective_parallelism`` — never oversubscribes the
machine.  Pre-pinning, the pools and the BLAS pool fought over the same
cores and "parallel" could lose to serial.

The 9 clients use synthetic feature/label grids rather than the EDA corpus:
the benchmark measures the execution engine, not data generation, and the
synthetic grids make it run in seconds.
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import (
    BENCH_GRID as GRID,
    BENCH_LOCAL_STEPS as LOCAL_STEPS,
    BENCH_NUM_CLIENTS,
    BenchModelBuilder,
    fresh_clients,
    write_records,
    write_result,
)

from repro.fl import (
    FLConfig,
    ProcessPoolBackend,
    SeededModelFactory,
    SerialBackend,
    ThreadPoolBackend,
    create_algorithm,
)
from repro.fl.parameters import flatten_state
from repro.utils.threadpools import blas_info

WORKERS = 4

BENCH_CONFIG = FLConfig(
    rounds=1,
    local_steps=LOCAL_STEPS,
    finetune_steps=1,
    learning_rate=2e-3,
    batch_size=4,
    seed=0,
)


def run_round(backend):
    factory = SeededModelFactory(BenchModelBuilder(), base_seed=0)
    algorithm = create_algorithm(
        "fedavg", fresh_clients(BENCH_CONFIG), factory, BENCH_CONFIG, backend=backend
    )
    try:
        if isinstance(backend, ProcessPoolBackend):
            # Pay pool spin-up outside the timed region: the pool persists
            # across rounds in a real run, so only steady-state is measured.
            backend._ensure_pool()
        elif isinstance(backend, ThreadPoolBackend):
            backend._ensure_executor()
        start = time.perf_counter()
        training = algorithm.run()
        elapsed = time.perf_counter() - start
        if not isinstance(backend, SerialBackend):
            assert backend.spawn_count == 1, "warm pool must spawn exactly once"
    finally:
        backend.close()
    return training, elapsed


def parallelism_fields(backend) -> dict:
    """The effective (workers x BLAS-threads) product one backend deploys."""
    cores = os.cpu_count() or 1
    if isinstance(backend, SerialBackend):
        # Serial + auto leaves BLAS alone: one client's GEMMs use the BLAS
        # pool's own thread count (all cores out of the box).
        blas_threads = blas_info().max_threads or cores
        return {
            "workers": 1,
            "effective_workers": 1,
            "blas_threads_per_worker": blas_threads,
            "effective_parallelism": blas_threads,
        }
    pool_size = max(1, min(backend.effective_workers, BENCH_NUM_CLIENTS))
    per_worker = backend.resolved_blas_threads(pool_size)
    if per_worker is None:
        per_worker = blas_info().max_threads or 1
    return {
        "workers": backend.workers,
        "effective_workers": pool_size,
        "blas_threads_per_worker": per_worker,
        "effective_parallelism": pool_size * per_worker,
    }


def test_execution_backend_speedup(benchmark):
    backends = {
        "serial": SerialBackend,
        "process": lambda: ProcessPoolBackend(workers=WORKERS),
        "thread": lambda: ThreadPoolBackend(workers=WORKERS),
    }
    parallelism = {}

    def measure():
        results = {}
        for name, build in backends.items():
            backend = build()
            parallelism[name] = parallelism_fields(backend)
            results[name] = run_round(backend)
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    serial_training, serial_seconds = results["serial"]

    # Bit-identical aggregation is the hard guarantee, on any machine.
    serial_flat = flatten_state(serial_training.global_state)
    for name in ("process", "thread"):
        training, _ = results[name]
        assert np.array_equal(serial_flat, flatten_state(training.global_state)), name
        assert [r.mean_loss for r in serial_training.history] == [
            r.mean_loss for r in training.history
        ], name

    cores = os.cpu_count() or 1
    speedups = {
        name: serial_seconds / seconds if seconds > 0 else float("inf")
        for name, (_, seconds) in results.items()
    }
    lines = [
        "Execution backends: one 9-client FedAvg round, warm pools, BLAS-aware",
        f"({LOCAL_STEPS} local steps/client, FLNet, {GRID}x{GRID} synthetic grids, "
        f"{WORKERS} workers requested, {cores} cores)",
        "",
        f"{'backend':<12}{'seconds':>10}{'speedup':>10}{'eff.workers':>13}{'blas/worker':>13}",
    ]
    for name in ("serial", "process", "thread"):
        _, seconds = results[name]
        fields = parallelism[name]
        lines.append(
            f"{name:<12}{seconds:>10.3f}{speedups[name]:>9.2f}x"
            f"{fields['effective_workers']:>13}{fields['blas_threads_per_worker']:>13}"
        )
    lines += [
        "",
        "bit-identical global state across all backends: True",
        "warm pools: workers spawned once per backend (asserted)",
        "BLAS policy auto: workers x BLAS-threads never exceeds the cores",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    write_result("execution_backends", text)
    write_records(
        "execution_backends",
        [
            {
                "op": "fedavg_round",
                "config": f"{name}_{WORKERS}w" if name != "serial" else "serial",
                "ms": round(seconds * 1000, 3),
                "speedup": round(speedups[name], 3),
                **parallelism[name],
            }
            for name, (_, seconds) in results.items()
        ],
    )

    if cores >= 4:
        # With BLAS pinning, the pools own disjoint cores: the 9-way round
        # must come out ahead of the sequential scan even after IPC
        # overhead, for both pool flavors.
        assert speedups["process"] > 1.2, (
            f"expected parallel speedup on {cores} cores, got {speedups['process']:.2f}x"
        )
        assert speedups["thread"] > 1.0, (
            f"expected the thread pool to beat serial on {cores} cores, "
            f"got {speedups['thread']:.2f}x"
        )
