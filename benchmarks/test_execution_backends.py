"""Benchmark: serial vs. warm process-pool vs. warm thread-pool execution.

The execution engine's promise is twofold: the parallel backends must be
**bit-identical** to ``SerialBackend`` for the same seed (asserted
unconditionally), and on a multi-core machine they must turn the 9-client
round from a sequential scan into a parallel map that is at least not
slower than serial (asserted when enough cores are available, always
reported).  Both pools are *warm*: workers are spawned once per backend
lifetime (``spawn_count``, asserted here too), so only steady-state rounds
are measured — the pre-warm-pool numbers paid spawn cost per benchmark
run.

The 9 clients use synthetic feature/label grids rather than the EDA corpus:
the benchmark measures the execution engine, not data generation, and the
synthetic grids make it run in seconds.
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import (
    BENCH_GRID as GRID,
    BENCH_LOCAL_STEPS as LOCAL_STEPS,
    BenchModelBuilder,
    fresh_clients,
    write_records,
    write_result,
)

from repro.fl import (
    FLConfig,
    ProcessPoolBackend,
    SeededModelFactory,
    SerialBackend,
    ThreadPoolBackend,
    create_algorithm,
)
from repro.fl.parameters import flatten_state

WORKERS = 4

BENCH_CONFIG = FLConfig(
    rounds=1,
    local_steps=LOCAL_STEPS,
    finetune_steps=1,
    learning_rate=2e-3,
    batch_size=4,
    seed=0,
)


def run_round(backend):
    factory = SeededModelFactory(BenchModelBuilder(), base_seed=0)
    algorithm = create_algorithm(
        "fedavg", fresh_clients(BENCH_CONFIG), factory, BENCH_CONFIG, backend=backend
    )
    try:
        if isinstance(backend, ProcessPoolBackend):
            # Pay pool spin-up outside the timed region: the pool persists
            # across rounds in a real run, so only steady-state is measured.
            backend._ensure_pool()
        elif isinstance(backend, ThreadPoolBackend):
            backend._ensure_executor()
        start = time.perf_counter()
        training = algorithm.run()
        elapsed = time.perf_counter() - start
        if not isinstance(backend, SerialBackend):
            assert backend.spawn_count == 1, "warm pool must spawn exactly once"
    finally:
        backend.close()
    return training, elapsed


def test_execution_backend_speedup(benchmark):
    def measure():
        results = {}
        results["serial"] = run_round(SerialBackend())
        results["process"] = run_round(ProcessPoolBackend(workers=WORKERS))
        results["thread"] = run_round(ThreadPoolBackend(workers=WORKERS))
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    serial_training, serial_seconds = results["serial"]

    # Bit-identical aggregation is the hard guarantee, on any machine.
    serial_flat = flatten_state(serial_training.global_state)
    for name in ("process", "thread"):
        training, _ = results[name]
        assert np.array_equal(serial_flat, flatten_state(training.global_state)), name
        assert [r.mean_loss for r in serial_training.history] == [
            r.mean_loss for r in training.history
        ], name

    cores = os.cpu_count() or 1
    speedups = {
        name: serial_seconds / seconds if seconds > 0 else float("inf")
        for name, (_, seconds) in results.items()
    }
    lines = [
        "Execution backends: one 9-client FedAvg round, warm pools",
        f"({LOCAL_STEPS} local steps/client, FLNet, {GRID}x{GRID} synthetic grids, "
        f"{WORKERS} workers, {cores} cores)",
        "",
        f"{'backend':<12}{'seconds':>10}{'speedup':>10}",
    ]
    for name in ("serial", "process", "thread"):
        _, seconds = results[name]
        lines.append(f"{name:<12}{seconds:>10.3f}{speedups[name]:>9.2f}x")
    lines += [
        "",
        "bit-identical global state across all backends: True",
        "warm pools: workers spawned once per backend (asserted)",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    write_result("execution_backends", text)
    write_records(
        "execution_backends",
        [
            {
                "op": "fedavg_round",
                "config": f"{name}_{WORKERS}w" if name != "serial" else "serial",
                "ms": round(seconds * 1000, 3),
                "speedup": round(speedups[name], 3),
            }
            for name, (_, seconds) in results.items()
        ],
    )

    if cores >= 4:
        # With 4 workers on >=4 cores the 9-way round must come out ahead of
        # the sequential scan even after IPC overhead, and the thread pool
        # must at least not fall behind serial.
        assert speedups["process"] > 1.2, (
            f"expected parallel speedup on {cores} cores, got {speedups['process']:.2f}x"
        )
        assert speedups["thread"] > 1.0, (
            f"expected the thread pool to beat serial on {cores} cores, "
            f"got {speedups['thread']:.2f}x"
        )
