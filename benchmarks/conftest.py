"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table (or ablation) of the paper using the
``default`` experiment preset — a scaled-down configuration that preserves the
comparative structure of the results (see DESIGN.md section 6).  The
synthesized corpus is cached on disk under ``benchmarks/.corpus_cache`` so the
per-table benches share one data-generation pass, and every regenerated table
is also written to ``benchmarks/results/`` so the numbers survive pytest's
output capture.
"""

from __future__ import annotations

import json
import os
import platform
import tracemalloc
from pathlib import Path
from typing import Dict, Optional, Sequence

import pytest

from repro.experiments import (
    ExperimentResult,
    ExperimentRunner,
    comparison_table,
    default,
    format_rows,
    smoke,
)

BENCH_DIR = Path(__file__).parent
CACHE_DIR = BENCH_DIR / ".corpus_cache"
RESULTS_DIR = BENCH_DIR / "results"


def write_result(name: str, text: str) -> Path:
    """Persist a regenerated table to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def write_records(name: str, records: Sequence[Dict[str, object]]) -> Path:
    """Persist machine-readable benchmark records to benchmarks/results/<name>.json.

    Each record is one measurement: at minimum ``{"op": ..., "config": ...,
    "ms": ...}``, plus ``"speedup"`` (and anything else) where meaningful.
    A small environment header makes runs comparable across machines, so
    the perf trajectory is trackable across PRs.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    from repro.utils.threadpools import blas_info

    info = blas_info()
    payload = {
        "benchmark": name,
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            # BLAS identity makes records comparable across machines: the
            # perf gate (repro bench diff) skips cross-environment
            # comparisons with a warning instead of failing on them.
            "blas_vendor": info.vendor,
            "blas_version": info.version,
            "blas_max_threads": info.max_threads,
        },
        "records": list(records),
    }
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def rss_bytes() -> Optional[int]:
    """Resident set size of this process, or ``None`` where unsupported."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as statm:
            pages = int(statm.read().split()[1])
        return pages * os.sysconf("SC_PAGESIZE")
    except (OSError, ValueError, IndexError):
        return None


class MemoryProbe:
    """Peak-allocation measurement around one benchmark region.

    Combines ``tracemalloc`` (exact Python-level peak, the quantity the
    population-scale assertions compare across cohort sizes) with an RSS
    snapshot (the whole-process view, informational).  Use as a context
    manager and read :meth:`record` afterwards; the numbers merge into the
    benchmark's JSON records via :func:`write_records`.
    """

    def __init__(self):
        self.peak_bytes: Optional[int] = None
        self.rss_before: Optional[int] = None
        self.rss_after: Optional[int] = None
        self._owns_tracing = False

    def __enter__(self) -> "MemoryProbe":
        self.rss_before = rss_bytes()
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracing = True
        tracemalloc.reset_peak()
        return self

    def __exit__(self, *exc_info) -> None:
        _, self.peak_bytes = tracemalloc.get_traced_memory()
        if self._owns_tracing:
            tracemalloc.stop()
        self.rss_after = rss_bytes()

    def record(self) -> Dict[str, object]:
        """The measurement fields to merge into a benchmark record."""
        return {
            "peak_traced_bytes": self.peak_bytes,
            "rss_before_bytes": self.rss_before,
            "rss_after_bytes": self.rss_after,
        }


def run_table_experiment(
    model: str,
    algorithms: Optional[Sequence[str]] = None,
    preset_name: str = "default",
) -> ExperimentResult:
    """Run the table experiment for ``model`` under the given preset."""
    config = default(model) if preset_name == "default" else smoke(model)
    runner = ExperimentRunner(config, cache_dir=CACHE_DIR)
    return runner.run(algorithms)


def render_table(result: ExperimentResult, title: str) -> str:
    """Format a regenerated table next to the paper's reported averages."""
    measured: Dict[str, float] = {row.algorithm: row.average_auc for row in result.rows}
    parts = [
        format_rows(result.rows, title=title),
        "",
        "Average AUC, paper vs. this reproduction (synthetic substrate):",
        comparison_table(result.config.model, measured),
    ]
    return "\n".join(parts)


@pytest.fixture(scope="session")
def bench_cache_dir() -> Path:
    CACHE_DIR.mkdir(parents=True, exist_ok=True)
    return CACHE_DIR


# -- shared 9-client FedAvg round fixture ----------------------------------------
#
# One synthetic-grid client roster shared by the execution-backend and
# training-engine benchmarks, so their per-round numbers are measured on the
# identical workload (9 FLNet clients, 16x16 grids, batch 4).

BENCH_NUM_CLIENTS = 9
BENCH_GRID = 16
BENCH_CHANNELS = 6
BENCH_SAMPLES_PER_CLIENT = 8
BENCH_LOCAL_STEPS = 8


class BenchModelBuilder:
    """Picklable FLNet builder (the process pool may need to ship clients)."""

    def __call__(self, seed: int):
        from repro.models import FLNet

        return FLNet(BENCH_CHANNELS, seed=seed)


def synthetic_dataset(client_id: int, name: str, samples: int):
    """Synthetic feature/label grids: the benchmarks measure the engine, not data generation."""
    import numpy as np

    from repro.data.dataset import PlacementSample, RoutabilityDataset

    rng = np.random.default_rng(1000 + client_id)
    built = []
    for index in range(samples):
        features = rng.normal(size=(BENCH_CHANNELS, BENCH_GRID, BENCH_GRID))
        label = (rng.random((BENCH_GRID, BENCH_GRID)) < 0.15).astype(np.float64)
        built.append(
            PlacementSample(
                features=features,
                label=label,
                design_name=f"synthetic_c{client_id}",
                suite="synthetic",
                placement_index=index,
            )
        )
    return RoutabilityDataset(built, name=name)


def fresh_clients(config) -> list:
    """A fresh 9-client roster (fresh RNG streams) for one benchmark run."""
    from repro.fl import FederatedClient, SeededModelFactory

    factory = SeededModelFactory(BenchModelBuilder(), base_seed=0)
    return [
        FederatedClient(
            client_id,
            synthetic_dataset(client_id, f"bench_train_{client_id}", BENCH_SAMPLES_PER_CLIENT),
            synthetic_dataset(100 + client_id, f"bench_test_{client_id}", 2),
            factory,
            config,
        )
        for client_id in range(1, BENCH_NUM_CLIENTS + 1)
    ]
