"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table (or ablation) of the paper using the
``default`` experiment preset — a scaled-down configuration that preserves the
comparative structure of the results (see DESIGN.md section 6).  The
synthesized corpus is cached on disk under ``benchmarks/.corpus_cache`` so the
per-table benches share one data-generation pass, and every regenerated table
is also written to ``benchmarks/results/`` so the numbers survive pytest's
output capture.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence

import pytest

from repro.experiments import (
    ExperimentResult,
    ExperimentRunner,
    comparison_table,
    default,
    format_rows,
    smoke,
)

BENCH_DIR = Path(__file__).parent
CACHE_DIR = BENCH_DIR / ".corpus_cache"
RESULTS_DIR = BENCH_DIR / "results"


def write_result(name: str, text: str) -> Path:
    """Persist a regenerated table to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def run_table_experiment(
    model: str,
    algorithms: Optional[Sequence[str]] = None,
    preset_name: str = "default",
) -> ExperimentResult:
    """Run the table experiment for ``model`` under the given preset."""
    config = default(model) if preset_name == "default" else smoke(model)
    runner = ExperimentRunner(config, cache_dir=CACHE_DIR)
    return runner.run(algorithms)


def render_table(result: ExperimentResult, title: str) -> str:
    """Format a regenerated table next to the paper's reported averages."""
    measured: Dict[str, float] = {row.algorithm: row.average_auc for row in result.rows}
    parts = [
        format_rows(result.rows, title=title),
        "",
        "Average AUC, paper vs. this reproduction (synthetic substrate):",
        comparison_table(result.config.model, measured),
    ]
    return "\n".join(parts)


@pytest.fixture(scope="session")
def bench_cache_dir() -> Path:
    CACHE_DIR.mkdir(parents=True, exist_ok=True)
    return CACHE_DIR
