"""Table 3: testing accuracy (ROC AUC) on routability prediction with FLNet.

Runs every training-method row of the paper's Table 3 — local baselines,
centralized training, FedProx, FedProx-LG, IFCA, FedProx + fine-tuning,
assigned clustering, and FedProx + alpha-portion sync — with the FLNet model
on the 9-client corpus, then prints the per-client AUC table next to the
paper's reported averages.

The shapes this bench targets (absolute values differ because the substrate
is synthetic): FedProx beats the local baselines, fine-tuning improves on
FedProx, and centralized training is the upper reference point.
"""

from conftest import render_table, run_table_experiment, write_result


def run():
    return run_table_experiment("flnet")


def test_table3_flnet(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)

    expected_rows = {
        "local",
        "centralized",
        "fedprox",
        "fedprox_lg",
        "ifca",
        "fedprox_finetune",
        "assigned_clustering",
        "fedprox_alpha",
    }
    assert {row.algorithm for row in result.rows} == expected_rows
    for row in result.rows:
        assert len(row.per_client_auc) == 9
        assert all(0.0 <= auc <= 1.0 for auc in row.per_client_auc.values())

    text = render_table(result, "Table 3: ROC AUC on routability prediction with FLNet")
    print("\n" + text)
    write_result("table3_flnet", text)
