"""Benchmark: the local-training compute engine, per-round wall clock.

Measures one 9-client FedAvg round (the exact setup of
``test_execution_backends.py``) under three engine configurations on the
serial backend, isolating the compute engine from the executor:

``pre-PR float64``
    :func:`repro.nn.workspace.workspaces_disabled` restores the engine the
    repo shipped before this change — per-call ``np.pad`` + fancy-index
    im2col, fresh matmul temporaries every layer every step, per-sample
    stack-based batch collation — in float64.
``float64 engine``
    Persistent layer workspaces + contiguous-batch collation, still
    float64 (the default configuration; value changes vs. pre-PR are below
    the seeded goldens' 1e-12 tolerance).
``float32 engine``
    The same plus the opt-in float32 compute dtype: half the memory
    bandwidth through the im2col/GEMM hot loop.

The acceptance gate is the headline claim: the float32 engine must beat
the pre-PR float64 path by >= 2x per-round wall clock, and the float64
engine must not be slower than pre-PR.  A single-client FLNet step
benchmark (the CI perf-smoke gate) asserts float32 > float64 on the same
fixed workload, and the float32 loss trajectory is sanity-checked against
float64.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import (
    BENCH_CHANNELS as CHANNELS,
    BENCH_GRID as GRID,
    BENCH_LOCAL_STEPS as LOCAL_STEPS,
    BENCH_SAMPLES_PER_CLIENT as SAMPLES_PER_CLIENT,
    BenchModelBuilder,
    fresh_clients,
    synthetic_dataset,
    write_records,
    write_result,
)

from repro.fl import FLConfig, SeededModelFactory, SerialBackend, create_algorithm
from repro.fl.trainer import LocalTrainer
from repro.models import FLNet
from repro.nn.workspace import workspaces_disabled

STEP_BENCH_STEPS = 12


def bench_config(compute_dtype: str) -> FLConfig:
    return FLConfig(
        rounds=1,
        local_steps=LOCAL_STEPS,
        finetune_steps=1,
        learning_rate=2e-3,
        batch_size=4,
        seed=0,
        compute_dtype=compute_dtype,
    )


def run_round(config: FLConfig, pre_engine: bool = False):
    """One timed FedAvg round on the serial backend; returns (training, seconds)."""
    factory = SeededModelFactory(BenchModelBuilder(), base_seed=0)
    algorithm = create_algorithm(
        "fedavg", fresh_clients(config), factory, config, backend=SerialBackend()
    )
    if pre_engine:
        with workspaces_disabled():
            start = time.perf_counter()
            training = algorithm.run()
            seconds = time.perf_counter() - start
    else:
        start = time.perf_counter()
        training = algorithm.run()
        seconds = time.perf_counter() - start
    return training, seconds


def run_step_bench(compute_dtype: str) -> float:
    """Seconds for a fixed single-client FLNet training-step workload."""
    dataset = synthetic_dataset(1, "step_bench", SAMPLES_PER_CLIENT)
    model = FLNet(CHANNELS, seed=0)
    trainer = LocalTrainer(
        batch_size=4,
        learning_rate=2e-3,
        rng=np.random.default_rng(0),
        compute_dtype=compute_dtype,
    )
    # Warm the engine (workspace allocation, index memoization, dtype cast)
    # outside the timed region: steady-state is what a round pays.
    trainer.train_steps(model, dataset, steps=2)
    start = time.perf_counter()
    trainer.train_steps(model, dataset, steps=STEP_BENCH_STEPS)
    return time.perf_counter() - start


def test_training_engine_round_speedup(benchmark):
    def measure():
        pre_training, pre_seconds = run_round(bench_config("float64"), pre_engine=True)
        f64_training, f64_seconds = run_round(bench_config("float64"))
        f32_training, f32_seconds = run_round(bench_config("float32"))
        return pre_training, pre_seconds, f64_training, f64_seconds, f32_training, f32_seconds

    (
        pre_training,
        pre_seconds,
        f64_training,
        f64_seconds,
        f32_training,
        f32_seconds,
    ) = benchmark.pedantic(measure, rounds=1, iterations=1)

    # The float32 trajectory must track float64 (reduced precision, same
    # optimization), and every configuration must actually have trained.
    pre_losses = [record.mean_loss for record in pre_training.history]
    f64_losses = [record.mean_loss for record in f64_training.history]
    f32_losses = [record.mean_loss for record in f32_training.history]
    np.testing.assert_allclose(f64_losses, pre_losses, rtol=1e-9)
    np.testing.assert_allclose(f32_losses, f64_losses, rtol=1e-3)

    step_f64 = run_step_bench("float64")
    step_f32 = run_step_bench("float32")

    speedup_f64 = pre_seconds / f64_seconds if f64_seconds > 0 else float("inf")
    speedup_f32 = pre_seconds / f32_seconds if f32_seconds > 0 else float("inf")
    step_speedup = step_f64 / step_f32 if step_f32 > 0 else float("inf")

    lines = [
        "Training-engine throughput: one 9-client FedAvg round, serial backend",
        f"({LOCAL_STEPS} local steps/client, FLNet, {GRID}x{GRID} synthetic grids, batch 4)",
        "",
        f"{'engine':<18}{'seconds':>10}{'speedup':>10}",
        f"{'pre-PR float64':<18}{pre_seconds:>10.3f}{'1.00x':>10}",
        f"{'float64 engine':<18}{f64_seconds:>10.3f}{speedup_f64:>9.2f}x",
        f"{'float32 engine':<18}{f32_seconds:>10.3f}{speedup_f32:>9.2f}x",
        "",
        f"single-client FLNet step benchmark ({STEP_BENCH_STEPS} steps, warm):",
        f"{'float64':<18}{step_f64:>10.3f}",
        f"{'float32':<18}{step_f32:>10.3f}{step_speedup:>9.2f}x",
        "",
        "required: float32 >= 2x over the pre-PR float64 round; float64 engine",
        "not slower than pre-PR; float32 loss curve within 1e-3 of float64",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    write_result("training_engine", text)
    write_records(
        "training_engine",
        [
            {
                "op": "fedavg_round",
                "config": "pre_pr_float64",
                "ms": round(pre_seconds * 1000, 3),
                "speedup": 1.0,
            },
            {
                "op": "fedavg_round",
                "config": "float64_engine",
                "ms": round(f64_seconds * 1000, 3),
                "speedup": round(speedup_f64, 3),
            },
            {
                "op": "fedavg_round",
                "config": "float32_engine",
                "ms": round(f32_seconds * 1000, 3),
                "speedup": round(speedup_f32, 3),
            },
            {
                "op": "flnet_step",
                "config": "float64_engine",
                "ms": round(step_f64 * 1000, 3),
                "speedup": 1.0,
            },
            {
                "op": "flnet_step",
                "config": "float32_engine",
                "ms": round(step_f32 * 1000, 3),
                "speedup": round(step_speedup, 3),
            },
        ],
    )

    assert f64_seconds <= pre_seconds * 1.10, (
        f"float64 engine regressed vs pre-PR: {f64_seconds:.3f}s vs {pre_seconds:.3f}s"
    )
    assert speedup_f32 >= 2.0, (
        f"float32 engine must be >= 2x over the pre-PR float64 round, got {speedup_f32:.2f}x"
    )
    assert step_speedup > 1.0, (
        f"float32 must beat float64 on the FLNet step benchmark, got {step_speedup:.2f}x"
    )
