"""Measured wire traffic of compressed federated rounds.

Unlike :mod:`test_communication_costs` (the analytic model), this benchmark
runs real FedAvg training on the smoke preset with every broadcast and
upload routed through the transport channel, and reports *measured* payload
bytes.  The headline number is the uplink reduction of 8-bit quantized,
delta-encoded uploads against a float32 identity wire — the acceptance bar
is >= 4x — plus the top-k sparsification setting for context.
"""

from conftest import CACHE_DIR, write_records, write_result

from repro.experiments import ExperimentRunner, smoke

#: Transport settings compared on one seeded FedAvg smoke run each.
SETTINGS = ("float32", "none", "quantize", "topk")


def run_compressed_fedavg(compression: str):
    config = smoke("flnet").with_algorithms(["fedavg"]).with_transport(
        compression=compression, compression_bits=8, topk_fraction=0.1
    )
    runner = ExperimentRunner(config, cache_dir=CACHE_DIR)
    result = runner.run()
    outcome = result.outcomes[0]
    return outcome.communication, outcome.evaluation.average_auc


def run_all():
    return {name: run_compressed_fedavg(name) for name in SETTINGS}


def test_transport_compression(benchmark):
    measured = benchmark.pedantic(run_all, rounds=1, iterations=1)

    baseline, _ = measured["float32"]
    quantized, _ = measured["quantize"]
    sparsified, _ = measured["topk"]
    assert baseline.total_uplink_bytes > 0
    assert quantized.total_uplink_bytes > 0

    uplink_ratio = baseline.total_uplink_bytes / quantized.total_uplink_bytes
    # Acceptance bar: 8-bit quantized delta uploads beat the float32
    # identity wire by at least 4x on measured bytes.
    assert uplink_ratio >= 4.0, (
        f"8-bit quantization reduced measured uplink only {uplink_ratio:.2f}x "
        f"({baseline.total_uplink_bytes:,d} B -> {quantized.total_uplink_bytes:,d} B)"
    )
    assert sparsified.total_uplink_bytes < baseline.total_uplink_bytes

    lines = [
        "Measured FedAvg wire traffic (smoke preset, 2 rounds, 3 clients)",
        "",
        f"{'setting':<10}{'uplink codec':<24}{'uplink B':>12}{'downlink B':>12}{'avg AUC':>10}",
    ]
    for name in SETTINGS:
        comm, auc = measured[name]
        lines.append(
            f"{name:<10}{comm.uplink_codec:<24}{comm.total_uplink_bytes:>12,d}"
            f"{comm.total_downlink_bytes:>12,d}{auc:>10.3f}"
        )
    lines.append("")
    lines.append(
        f"uplink reduction, 8-bit quantized delta uploads vs float32 identity: "
        f"{uplink_ratio:.1f}x"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_result("transport_compression", text)
    write_records(
        "transport_compression",
        [
            {
                "op": "fedavg_run_bytes",
                "config": name,
                "uplink_bytes": comm.total_uplink_bytes,
                "downlink_bytes": comm.total_downlink_bytes,
                "average_auc": round(auc, 4),
            }
            for name, (comm, auc) in measured.items()
        ]
        + [
            {
                "op": "uplink_reduction",
                "config": "quantize8_delta_vs_float32",
                "speedup": round(uplink_ratio, 3),
            }
        ],
    )
