"""Ablation: FLNet kernel size under federated training.

Table 1 of the paper fixes FLNet's kernels at 9x9 and Section 4.2 justifies
the choice by receptive field: DRC hotspots depend on a spatial neighbourhood
of the congested bin, so a two-layer network needs large kernels to see it.
This ablation trains FLNet with 3x3, 5x5, and 9x9 kernels under FedProx on
the reduced smoke corpus and reports the resulting average AUC — the 9x9
configuration is expected to be at least as accurate as the smaller kernels.
"""

from dataclasses import replace

from conftest import write_result

from repro.experiments import ExperimentRunner, smoke
from repro.fl import create_algorithm, evaluate_result

KERNEL_SIZES = (3, 5, 9)


def run_kernel_sweep():
    outcomes = {}
    for kernel in KERNEL_SIZES:
        config = replace(smoke("flnet"), model_kwargs={"kernel_size": kernel})
        runner = ExperimentRunner(config)
        clients = runner.federated_clients()
        training = create_algorithm("fedprox", clients, runner.model_factory(), config.fl).run()
        evaluation = evaluate_result(training, clients)
        receptive_field = 2 * (kernel - 1) + 1
        outcomes[kernel] = (evaluation.average_auc, receptive_field)
    return outcomes


def test_ablation_kernel_size(benchmark):
    outcomes = benchmark.pedantic(run_kernel_sweep, rounds=1, iterations=1)

    assert set(outcomes) == set(KERNEL_SIZES)
    for auc, _ in outcomes.values():
        assert 0.0 <= auc <= 1.0

    lines = [
        "Ablation: FLNet kernel size under FedProx (smoke corpus)",
        "(the paper selects 9x9 kernels for their receptive field)",
        "",
        f"{'Kernel':<10}{'receptive field':>17}{'avg AUC':>10}",
    ]
    for kernel, (auc, receptive_field) in sorted(outcomes.items()):
        lines.append(f"{kernel}x{kernel:<7}{receptive_field:>14} bins{auc:>10.3f}")
    text = "\n".join(lines)
    print("\n" + text)
    write_result("ablation_kernel_size", text)
