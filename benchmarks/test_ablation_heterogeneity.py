"""Ablation: client-level data heterogeneity.

The paper's Section 4.1 attributes the difficulty of decentralized routability
training to heterogeneity: clients hold designs from different benchmark
suites, so their feature and label distributions differ.  This ablation
compares two three-client corpora of identical size — a homogeneous (IID-like)
split where every client holds ISCAS'89-style designs, and the heterogeneous
split where each client holds a different suite — and reports, for each, the
local-baseline AUC, the FedProx AUC, and the client drift (mean pairwise
distance between client models before aggregation).  Heterogeneity should
increase drift and shrink FedProx's margin over local training.
"""

from dataclasses import replace

from conftest import write_result

from repro.data.clients import ClientSpec
from repro.experiments import ExperimentRunner, smoke
from repro.fl import create_algorithm, evaluate_result

HOMOGENEOUS_SPECS = (
    ClientSpec(1, "iscas89", 2, 1, 8, 4),
    ClientSpec(2, "iscas89", 2, 1, 8, 4),
    ClientSpec(3, "iscas89", 2, 1, 8, 4),
)


def run_heterogeneity_study():
    outcomes = {}
    heterogeneous = smoke("flnet")
    homogeneous = replace(heterogeneous, client_specs=HOMOGENEOUS_SPECS, name="smoke:flnet:iid")
    for label, config in (("homogeneous (IID)", homogeneous), ("heterogeneous", heterogeneous)):
        runner = ExperimentRunner(config)
        clients = runner.federated_clients()
        local = create_algorithm("local", clients, runner.model_factory(), config.fl).run()
        federated = create_algorithm("fedprox", clients, runner.model_factory(), config.fl).run()
        local_auc = evaluate_result(local, clients).average_auc
        fed_auc = evaluate_result(federated, clients).average_auc
        drift = federated.history[-1].extra.get("client_drift", float("nan"))
        outcomes[label] = (local_auc, fed_auc, drift)
    return outcomes


def test_ablation_heterogeneity(benchmark):
    outcomes = benchmark.pedantic(run_heterogeneity_study, rounds=1, iterations=1)

    assert set(outcomes) == {"homogeneous (IID)", "heterogeneous"}
    for local_auc, fed_auc, drift in outcomes.values():
        assert 0.0 <= local_auc <= 1.0
        assert 0.0 <= fed_auc <= 1.0
        assert drift >= 0.0

    lines = [
        "Ablation: client data heterogeneity (FLNet, 3 clients, smoke corpus)",
        "(heterogeneity is expected to increase client drift)",
        "",
        f"{'Split':<20}{'local AUC':>11}{'fedprox AUC':>13}{'drift':>9}",
    ]
    for label, (local_auc, fed_auc, drift) in outcomes.items():
        lines.append(f"{label:<20}{local_auc:>11.3f}{fed_auc:>13.3f}{drift:>9.3f}")
    text = "\n".join(lines)
    print("\n" + text)
    write_result("ablation_heterogeneity", text)
