"""Table 5: testing accuracy (ROC AUC) on routability prediction with PROS.

Same training-method grid as Tables 3-4 but with the PROS baseline estimator
(dilated convolutions, refinement, sub-pixel upsampling, batch norm).  The
paper's qualitative finding: PROS is the most complex of the three models and
the most vulnerable to client heterogeneity under decentralized training.
"""

from conftest import render_table, run_table_experiment, write_result


def run():
    return run_table_experiment("pros")


def test_table5_pros(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)

    assert len(result.rows) == 8
    for row in result.rows:
        assert len(row.per_client_auc) == 9
        assert all(0.0 <= auc <= 1.0 for auc in row.per_client_auc.values())

    text = render_table(result, "Table 5: ROC AUC on routability prediction with PROS")
    print("\n" + text)
    write_result("table5_pros", text)
